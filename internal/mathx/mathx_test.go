package mathx

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLogSumExpBasic(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, math.Inf(-1)},
		{"single", []float64{3.5}, 3.5},
		{"two equal", []float64{0, 0}, math.Log(2)},
		{"large offset", []float64{1000, 1000}, 1000 + math.Log(2)},
		{"mixed", []float64{math.Log(1), math.Log(2), math.Log(3)}, math.Log(6)},
		{"neg inf ignored", []float64{math.Inf(-1), 0}, 0},
		{"all neg inf", []float64{math.Inf(-1), math.Inf(-1)}, math.Inf(-1)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := LogSumExp(tc.xs)
			if !AlmostEqual(got, tc.want, 1e-12) && !(math.IsInf(got, -1) && math.IsInf(tc.want, -1)) {
				t.Errorf("LogSumExp(%v) = %v, want %v", tc.xs, got, tc.want)
			}
		})
	}
}

func TestLogSumExpNoOverflow(t *testing.T) {
	xs := []float64{700, 710, 705}
	got := LogSumExp(xs)
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("LogSumExp overflowed: %v", got)
	}
	if got < 710 || got > 711 {
		t.Errorf("LogSumExp(%v) = %v, want in (710, 711)", xs, got)
	}
}

func TestLogSumExp2MatchesSlice(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 50)
		b = math.Mod(b, 50)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return AlmostEqual(LogSumExp2(a, b), LogSumExp([]float64{a, b}), 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKahanSumPrecision(t *testing.T) {
	// 1 + 1e-16 repeated: naive summation loses the small terms entirely.
	xs := make([]float64, 0, 10001)
	xs = append(xs, 1)
	for i := 0; i < 10000; i++ {
		xs = append(xs, 1e-16)
	}
	got := KahanSum(xs)
	want := 1 + 1e-12
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("KahanSum = %.18f, want %.18f", got, want)
	}
}

func TestKahanSumMatchesExact(t *testing.T) {
	f := func(xs []float64) bool {
		// Restrict to moderate values so a long double-free reference is exact.
		var clean []float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			clean = append(clean, math.Mod(x, 1e6))
		}
		var naive float64
		for _, x := range clean {
			naive += x
		}
		return AlmostEqual(KahanSum(clean), naive, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tc := range tests {
		if got := Clamp(tc.v, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tc.v, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestGammaIncPKnownValues(t *testing.T) {
	// Reference values from the identity P(1, x) = 1 - exp(-x) and
	// P(1/2, x) = erf(sqrt(x)).
	tests := []struct {
		a, x float64
	}{
		{1, 0.5}, {1, 1}, {1, 3}, {0.5, 0.25}, {0.5, 2}, {2.5, 1.3}, {10, 9},
	}
	for _, tc := range tests {
		got, err := GammaIncP(tc.a, tc.x)
		if err != nil {
			t.Fatalf("GammaIncP(%v, %v): %v", tc.a, tc.x, err)
		}
		var want float64
		switch tc.a {
		case 1:
			want = 1 - math.Exp(-tc.x)
		case 0.5:
			want = math.Erf(math.Sqrt(tc.x))
		default:
			// Fall back to consistency with Q.
			q, err := GammaIncQ(tc.a, tc.x)
			if err != nil {
				t.Fatal(err)
			}
			want = 1 - q
		}
		if !AlmostEqual(got, want, 1e-10) {
			t.Errorf("GammaIncP(%v, %v) = %v, want %v", tc.a, tc.x, got, want)
		}
	}
}

func TestGammaIncComplement(t *testing.T) {
	f := func(a, x float64) bool {
		a = 0.1 + math.Abs(math.Mod(a, 20))
		x = math.Abs(math.Mod(x, 40))
		p, err1 := GammaIncP(a, x)
		q, err2 := GammaIncQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return AlmostEqual(p+q, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGammaIncPDomainErrors(t *testing.T) {
	for _, tc := range []struct{ a, x float64 }{{-1, 1}, {0, 1}, {1, -0.5}, {math.NaN(), 1}} {
		if _, err := GammaIncP(tc.a, tc.x); !errors.Is(err, ErrDomain) {
			t.Errorf("GammaIncP(%v, %v): want ErrDomain, got %v", tc.a, tc.x, err)
		}
	}
}

func TestGammaIncPEdge(t *testing.T) {
	if p, err := GammaIncP(3, 0); err != nil || p != 0 {
		t.Errorf("GammaIncP(3, 0) = %v, %v; want 0, nil", p, err)
	}
	if p, err := GammaIncP(3, math.Inf(1)); err != nil || p != 1 {
		t.Errorf("GammaIncP(3, +Inf) = %v, %v; want 1, nil", p, err)
	}
}

func TestGammaIncPMonotone(t *testing.T) {
	a := 2.7
	prev := -1.0
	for x := 0.0; x < 20; x += 0.25 {
		p, err := GammaIncP(a, x)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev-1e-12 {
			t.Fatalf("GammaIncP(%v, %v) = %v decreased from %v", a, x, p, prev)
		}
		prev = p
	}
}

func TestBetaIncKnownValues(t *testing.T) {
	// I_x(1, 1) = x;  I_x(2, 1) = x^2;  I_x(1, 2) = 1 - (1-x)^2.
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got, err := BetaInc(1, 1, x)
		if err != nil || !AlmostEqual(got, x, 1e-10) {
			t.Errorf("BetaInc(1, 1, %v) = %v, %v; want %v", x, got, err, x)
		}
		got, err = BetaInc(2, 1, x)
		if err != nil || !AlmostEqual(got, x*x, 1e-10) {
			t.Errorf("BetaInc(2, 1, %v) = %v, %v; want %v", x, got, err, x*x)
		}
		got, err = BetaInc(1, 2, x)
		want := 1 - (1-x)*(1-x)
		if err != nil || !AlmostEqual(got, want, 1e-10) {
			t.Errorf("BetaInc(1, 2, %v) = %v, %v; want %v", x, got, err, want)
		}
	}
}

func TestBetaIncSymmetry(t *testing.T) {
	f := func(a, b, x float64) bool {
		a = 0.2 + math.Abs(math.Mod(a, 10))
		b = 0.2 + math.Abs(math.Mod(b, 10))
		x = math.Abs(math.Mod(x, 1))
		p1, err1 := BetaInc(a, b, x)
		p2, err2 := BetaInc(b, a, 1-x)
		if err1 != nil || err2 != nil {
			return false
		}
		return AlmostEqual(p1, 1-p2, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBetaIncEdgesAndDomain(t *testing.T) {
	if v, err := BetaInc(2, 3, 0); err != nil || v != 0 {
		t.Errorf("BetaInc(2,3,0) = %v, %v", v, err)
	}
	if v, err := BetaInc(2, 3, 1); err != nil || v != 1 {
		t.Errorf("BetaInc(2,3,1) = %v, %v", v, err)
	}
	for _, tc := range []struct{ a, b, x float64 }{{-1, 1, 0.5}, {1, 0, 0.5}, {1, 1, -0.1}, {1, 1, 1.1}} {
		if _, err := BetaInc(tc.a, tc.b, tc.x); !errors.Is(err, ErrDomain) {
			t.Errorf("BetaInc(%v, %v, %v): want ErrDomain, got %v", tc.a, tc.b, tc.x, err)
		}
	}
}

func TestLogBeta(t *testing.T) {
	// B(2, 3) = 1/12.
	got, err := LogBeta(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(got, math.Log(1.0/12), 1e-12) {
		t.Errorf("LogBeta(2,3) = %v, want log(1/12)", got)
	}
	if _, err := LogBeta(0, 1); !errors.Is(err, ErrDomain) {
		t.Errorf("LogBeta(0,1): want ErrDomain, got %v", err)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
	}
	for _, tc := range tests {
		if got := NormalCDF(tc.z); !AlmostEqual(got, tc.want, 1e-9) {
			t.Errorf("NormalCDF(%v) = %v, want %v", tc.z, got, tc.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(p float64) bool {
		p = math.Abs(math.Mod(p, 1))
		if p <= 1e-12 || p >= 1-1e-12 {
			return true
		}
		z, err := NormalQuantile(p)
		if err != nil {
			return false
		}
		return AlmostEqual(NormalCDF(z), p, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if z, err := NormalQuantile(0); err != nil || !math.IsInf(z, -1) {
		t.Errorf("NormalQuantile(0) = %v, %v", z, err)
	}
	if z, err := NormalQuantile(1); err != nil || !math.IsInf(z, 1) {
		t.Errorf("NormalQuantile(1) = %v, %v", z, err)
	}
	if _, err := NormalQuantile(-0.1); !errors.Is(err, ErrDomain) {
		t.Errorf("NormalQuantile(-0.1): want ErrDomain, got %v", err)
	}
	if _, err := NormalQuantile(1.5); !errors.Is(err, ErrDomain) {
		t.Errorf("NormalQuantile(1.5): want ErrDomain, got %v", err)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1, 0) {
		t.Error("identical values must compare equal at tol 0")
	}
	if !AlmostEqual(1e16, 1e16+1, 1e-12) {
		t.Error("relative tolerance should absorb 1 ulp at 1e16")
	}
	if AlmostEqual(1, 2, 1e-12) {
		t.Error("1 and 2 are not almost equal")
	}
}
