package eval

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gem-embeddings/gem/internal/mathx"
)

func TestNMIIdenticalPartitions(t *testing.T) {
	labels := []string{"a", "a", "b", "b", "c", "c"}
	pred := []int{9, 9, 4, 4, 7, 7}
	nmi, err := NormalizedMutualInformation(labels, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(nmi, 1, 1e-12) {
		t.Errorf("NMI(identical) = %v, want 1", nmi)
	}
}

func TestNMIIndependentPartitions(t *testing.T) {
	// Perfectly crossed partitions: knowing the prediction tells nothing
	// about the label.
	labels := []string{"a", "a", "b", "b"}
	pred := []int{0, 1, 0, 1}
	nmi, err := NormalizedMutualInformation(labels, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(nmi, 0, 1e-12) {
		t.Errorf("NMI(independent) = %v, want 0", nmi)
	}
}

func TestNMITrivialPartitions(t *testing.T) {
	labels := []string{"a", "a", "a"}
	pred := []int{0, 0, 0}
	nmi, err := NormalizedMutualInformation(labels, pred)
	if err != nil {
		t.Fatal(err)
	}
	if nmi != 1 {
		t.Errorf("NMI(both trivial) = %v, want 1", nmi)
	}
}

func TestNMIValidation(t *testing.T) {
	if _, err := NormalizedMutualInformation(nil, nil); !errors.Is(err, ErrInput) {
		t.Errorf("empty: want ErrInput, got %v", err)
	}
	if _, err := NormalizedMutualInformation([]string{"a"}, []int{0, 1}); !errors.Is(err, ErrInput) {
		t.Errorf("mismatch: want ErrInput, got %v", err)
	}
}

func TestNMIBoundedAndSymmetricUnderRenaming(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		labels := make([]string, n)
		pred := make([]int, n)
		for i := range labels {
			labels[i] = string(rune('a' + rng.Intn(4)))
			pred[i] = rng.Intn(4)
		}
		nmi, err := NormalizedMutualInformation(labels, pred)
		if err != nil {
			return false
		}
		if nmi < -1e-12 || nmi > 1+1e-9 {
			return false
		}
		// Invariance under cluster renaming.
		perm := map[int]int{0: 2, 1: 3, 2: 0, 3: 1}
		renamed := make([]int, n)
		for i, p := range pred {
			renamed[i] = perm[p]
		}
		nmi2, err := NormalizedMutualInformation(labels, renamed)
		if err != nil {
			return false
		}
		return mathx.AlmostEqual(nmi, nmi2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestNMICorrelatesWithAgreement(t *testing.T) {
	labels := []string{"a", "a", "a", "a", "b", "b", "b", "b"}
	perfect := []int{0, 0, 0, 0, 1, 1, 1, 1}
	partial := []int{0, 0, 0, 1, 1, 1, 1, 0}
	nPerfect, _ := NormalizedMutualInformation(labels, perfect)
	nPartial, _ := NormalizedMutualInformation(labels, partial)
	if nPerfect <= nPartial {
		t.Errorf("NMI(perfect)=%v should exceed NMI(partial)=%v", nPerfect, nPartial)
	}
}
