// Package eval implements the evaluation protocol of the paper (§4.1.2):
// cosine-similarity nearest neighbours, precision and recall at k for
// semantic type detection (with k equal to the ground-truth cluster size),
// average precision aggregated per semantic type, and the clustering metrics
// ACC (accuracy under optimal Hungarian label matching) and ARI (adjusted
// Rand index).
package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/hungarian"
)

// ErrInput is returned for malformed metric inputs.
var ErrInput = errors.New("eval: invalid input")

// CosineSimilarity returns the cosine of the angle between a and b. Zero
// vectors have similarity 0 with everything. The arithmetic lives in
// internal/ann — the repository's single metric implementation — so eval
// and the search indexes can never drift apart.
func CosineSimilarity(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return math.NaN(), fmt.Errorf("%w: vector lengths %d vs %d", ErrInput, len(a), len(b))
	}
	return ann.CosineSimilarity(a, b), nil
}

// CosineSimilarityMatrix returns the full pairwise cosine similarity matrix
// of the embedding rows, built on the shared internal/ann metric kernels.
func CosineSimilarityMatrix(embeddings [][]float64) ([][]float64, error) {
	n := len(embeddings)
	if n == 0 {
		return nil, fmt.Errorf("%w: no embeddings", ErrInput)
	}
	d := len(embeddings[0])
	norms := make([]float64, n)
	for i, e := range embeddings {
		if len(e) != d {
			return nil, fmt.Errorf("%w: embedding %d has dim %d, want %d", ErrInput, i, len(e), d)
		}
		norms[i] = ann.Norm(e)
	}
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		sim[i][i] = 1
		for j := i + 1; j < n; j++ {
			var s float64
			if norms[i] > 0 && norms[j] > 0 {
				s = ann.Dot(embeddings[i], embeddings[j]) / (norms[i] * norms[j])
			}
			sim[i][j] = s
			sim[j][i] = s
		}
	}
	return sim, nil
}

// TopKNeighbors returns, for row i of the similarity matrix, the indices of
// the k most similar other rows (self excluded), most similar first. Ties are
// broken by lower index for determinism.
func TopKNeighbors(sim [][]float64, i, k int) ([]int, error) {
	n := len(sim)
	if i < 0 || i >= n {
		return nil, fmt.Errorf("%w: row %d outside [0, %d)", ErrInput, i, n)
	}
	if k < 0 {
		return nil, fmt.Errorf("%w: k = %d", ErrInput, k)
	}
	if k > n-1 {
		k = n - 1
	}
	idx := make([]int, 0, n-1)
	for j := 0; j < n; j++ {
		if j != i {
			idx = append(idx, j)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if sim[i][idx[a]] != sim[i][idx[b]] {
			return sim[i][idx[a]] > sim[i][idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k], nil
}

// PRResult holds precision and recall at k for one query column.
type PRResult struct {
	Precision float64
	Recall    float64
	K         int
}

// PrecisionRecallAtK computes precision and recall for column i following the
// paper's protocol: k is the number of other columns sharing i's ground-truth
// label; the top-k cosine neighbours are retrieved; TP are neighbours with
// the same label.
func PrecisionRecallAtK(sim [][]float64, labels []string, i int) (PRResult, error) {
	n := len(sim)
	if len(labels) != n {
		return PRResult{}, fmt.Errorf("%w: %d labels for %d rows", ErrInput, len(labels), n)
	}
	if i < 0 || i >= n {
		return PRResult{}, fmt.Errorf("%w: row %d outside [0, %d)", ErrInput, i, n)
	}
	k := 0
	for j, l := range labels {
		if j != i && l == labels[i] {
			k++
		}
	}
	if k == 0 {
		// A singleton type has no relevant neighbours; define P = R = 0 so it
		// neither inflates nor crashes the aggregate.
		return PRResult{K: 0}, nil
	}
	neighbors, err := TopKNeighbors(sim, i, k)
	if err != nil {
		return PRResult{}, err
	}
	tp := 0
	for _, j := range neighbors {
		if labels[j] == labels[i] {
			tp++
		}
	}
	return PRResult{
		Precision: float64(tp) / float64(len(neighbors)),
		Recall:    float64(tp) / float64(k),
		K:         k,
	}, nil
}

// AveragePrecisionByType computes precision@k for every column, averages
// within each semantic type, and then averages across types (macro average).
// This matches the paper's "average precision score ... for each semantic
// type and then aggregate all the precisions".
func AveragePrecisionByType(embeddings [][]float64, labels []string) (float64, error) {
	sim, err := CosineSimilarityMatrix(embeddings)
	if err != nil {
		return math.NaN(), err
	}
	return AveragePrecisionByTypeFromSim(sim, labels)
}

// AveragePrecisionByTypeFromSim is AveragePrecisionByType for a precomputed
// similarity matrix.
func AveragePrecisionByTypeFromSim(sim [][]float64, labels []string) (float64, error) {
	if len(labels) != len(sim) {
		return math.NaN(), fmt.Errorf("%w: %d labels for %d rows", ErrInput, len(labels), len(sim))
	}
	perType := make(map[string][]float64)
	for i := range sim {
		pr, err := PrecisionRecallAtK(sim, labels, i)
		if err != nil {
			return math.NaN(), err
		}
		if pr.K == 0 {
			continue // singleton type: undefined, skip
		}
		perType[labels[i]] = append(perType[labels[i]], pr.Precision)
	}
	if len(perType) == 0 {
		return math.NaN(), fmt.Errorf("%w: no type with at least two columns", ErrInput)
	}
	var total float64
	for _, ps := range perType {
		var s float64
		for _, p := range ps {
			s += p
		}
		total += s / float64(len(ps))
	}
	return total / float64(len(perType)), nil
}

// AverageRecallByType is the recall analogue of AveragePrecisionByType.
func AverageRecallByType(embeddings [][]float64, labels []string) (float64, error) {
	sim, err := CosineSimilarityMatrix(embeddings)
	if err != nil {
		return math.NaN(), err
	}
	perType := make(map[string][]float64)
	for i := range sim {
		pr, err := PrecisionRecallAtK(sim, labels, i)
		if err != nil {
			return math.NaN(), err
		}
		if pr.K == 0 {
			continue
		}
		perType[labels[i]] = append(perType[labels[i]], pr.Recall)
	}
	if len(perType) == 0 {
		return math.NaN(), fmt.Errorf("%w: no type with at least two columns", ErrInput)
	}
	var total float64
	for _, rs := range perType {
		var s float64
		for _, r := range rs {
			s += r
		}
		total += s / float64(len(rs))
	}
	return total / float64(len(perType)), nil
}

// ClusterACC returns clustering accuracy: the fraction of points whose
// predicted cluster, after the optimal one-to-one mapping of predicted
// clusters onto ground-truth classes (Hungarian algorithm), matches the
// ground truth. Ranges in [0, 1].
func ClusterACC(trueLabels []string, predicted []int) (float64, error) {
	n := len(trueLabels)
	if n == 0 || len(predicted) != n {
		return math.NaN(), fmt.Errorf("%w: %d true labels, %d predictions", ErrInput, n, len(predicted))
	}
	trueIdx := indexLabels(trueLabels)
	predIdx := indexInts(predicted)
	k := len(trueIdx)
	if len(predIdx) > k {
		k = len(predIdx)
	}
	// Contingency matrix as profit: w[p][t] = count of points in predicted
	// cluster p with true class t.
	w := make([][]float64, k)
	for i := range w {
		w[i] = make([]float64, k)
	}
	for i := 0; i < n; i++ {
		p := predIdx[predicted[i]]
		t := trueIdx[trueLabels[i]]
		w[p][t]++
	}
	_, total, err := hungarian.MaximizeProfit(w)
	if err != nil {
		return math.NaN(), err
	}
	return total / float64(n), nil
}

// AdjustedRandIndex returns the ARI between the ground-truth labels and the
// predicted clustering. 1 = identical partitions, ~0 = random, negative =
// worse than chance.
func AdjustedRandIndex(trueLabels []string, predicted []int) (float64, error) {
	n := len(trueLabels)
	if n == 0 || len(predicted) != n {
		return math.NaN(), fmt.Errorf("%w: %d true labels, %d predictions", ErrInput, n, len(predicted))
	}
	trueIdx := indexLabels(trueLabels)
	predIdx := indexInts(predicted)
	r := len(trueIdx)
	c := len(predIdx)
	cont := make([][]int, r)
	for i := range cont {
		cont[i] = make([]int, c)
	}
	rowSum := make([]int, r)
	colSum := make([]int, c)
	for i := 0; i < n; i++ {
		t := trueIdx[trueLabels[i]]
		p := predIdx[predicted[i]]
		cont[t][p]++
		rowSum[t]++
		colSum[p]++
	}
	choose2 := func(m int) float64 { return float64(m) * float64(m-1) / 2 }
	var sumComb, sumRows, sumCols float64
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			sumComb += choose2(cont[i][j])
		}
	}
	for _, s := range rowSum {
		sumRows += choose2(s)
	}
	for _, s := range colSum {
		sumCols += choose2(s)
	}
	totalPairs := choose2(n)
	expected := sumRows * sumCols / totalPairs
	maxIndex := (sumRows + sumCols) / 2
	if maxIndex == expected {
		// Degenerate partitions (e.g. everything in one cluster on both
		// sides): define ARI as 1 when partitions agree exactly, else 0.
		if sumComb == maxIndex {
			return 1, nil
		}
		return 0, nil
	}
	return (sumComb - expected) / (maxIndex - expected), nil
}

// indexLabels maps each distinct string label to a dense index in first-seen
// order.
func indexLabels(labels []string) map[string]int {
	idx := make(map[string]int)
	for _, l := range labels {
		if _, ok := idx[l]; !ok {
			idx[l] = len(idx)
		}
	}
	return idx
}

// indexInts maps each distinct int label to a dense index in first-seen order.
func indexInts(labels []int) map[int]int {
	idx := make(map[int]int)
	for _, l := range labels {
		if _, ok := idx[l]; !ok {
			idx[l] = len(idx)
		}
	}
	return idx
}
