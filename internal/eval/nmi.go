package eval

import (
	"fmt"
	"math"
)

// NormalizedMutualInformation returns the NMI between the ground-truth
// labels and a predicted clustering, normalized by the arithmetic mean of
// the two entropies. Ranges in [0, 1]: 1 for identical partitions, 0 for
// independent ones. Complements ARI/ACC for the clustering evaluation.
func NormalizedMutualInformation(trueLabels []string, predicted []int) (float64, error) {
	n := len(trueLabels)
	if n == 0 || len(predicted) != n {
		return math.NaN(), fmt.Errorf("%w: %d true labels, %d predictions", ErrInput, n, len(predicted))
	}
	trueIdx := indexLabels(trueLabels)
	predIdx := indexInts(predicted)
	r, c := len(trueIdx), len(predIdx)

	joint := make([][]float64, r)
	for i := range joint {
		joint[i] = make([]float64, c)
	}
	rowP := make([]float64, r)
	colP := make([]float64, c)
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		t := trueIdx[trueLabels[i]]
		p := predIdx[predicted[i]]
		joint[t][p] += inv
		rowP[t] += inv
		colP[p] += inv
	}

	var mi float64
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if joint[i][j] == 0 {
				continue
			}
			mi += joint[i][j] * math.Log(joint[i][j]/(rowP[i]*colP[j]))
		}
	}
	entropy := func(ps []float64) float64 {
		var h float64
		for _, p := range ps {
			if p > 0 {
				h -= p * math.Log(p)
			}
		}
		return h
	}
	ht, hp := entropy(rowP), entropy(colP)
	if ht == 0 && hp == 0 {
		// Both partitions trivial (single cluster each): identical.
		return 1, nil
	}
	denom := (ht + hp) / 2
	if denom == 0 {
		return 0, nil
	}
	nmi := mi / denom
	// Clamp tiny negative values from floating-point noise.
	if nmi < 0 && nmi > -1e-12 {
		nmi = 0
	}
	return nmi, nil
}
