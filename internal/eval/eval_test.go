package eval

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gem-embeddings/gem/internal/mathx"
)

func TestCosineSimilarityKnown(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"identical", []float64{1, 2, 3}, []float64{1, 2, 3}, 1},
		{"opposite", []float64{1, 0}, []float64{-1, 0}, -1},
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"scaled", []float64{1, 1}, []float64{5, 5}, 1},
		{"zero vector", []float64{0, 0}, []float64{1, 2}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := CosineSimilarity(tc.a, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			if !mathx.AlmostEqual(got, tc.want, 1e-12) {
				t.Errorf("CosineSimilarity = %v, want %v", got, tc.want)
			}
		})
	}
	if _, err := CosineSimilarity([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrInput) {
		t.Errorf("length mismatch: want ErrInput, got %v", err)
	}
}

func TestCosineSimilarityBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(10)
		a := make([]float64, d)
		b := make([]float64, d)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		s, err := CosineSimilarity(a, b)
		if err != nil {
			return false
		}
		return s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosineSimilarityMatrix(t *testing.T) {
	emb := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	sim, err := CosineSimilarityMatrix(emb)
	if err != nil {
		t.Fatal(err)
	}
	if sim[0][0] != 1 || sim[1][1] != 1 {
		t.Error("diagonal must be 1")
	}
	if !mathx.AlmostEqual(sim[0][1], 0, 1e-12) {
		t.Errorf("sim[0][1] = %v, want 0", sim[0][1])
	}
	if !mathx.AlmostEqual(sim[0][2], 1/math.Sqrt2, 1e-12) {
		t.Errorf("sim[0][2] = %v, want %v", sim[0][2], 1/math.Sqrt2)
	}
	if sim[0][2] != sim[2][0] {
		t.Error("similarity matrix must be symmetric")
	}
	if _, err := CosineSimilarityMatrix(nil); !errors.Is(err, ErrInput) {
		t.Errorf("empty: want ErrInput, got %v", err)
	}
	if _, err := CosineSimilarityMatrix([][]float64{{1}, {1, 2}}); !errors.Is(err, ErrInput) {
		t.Errorf("ragged: want ErrInput, got %v", err)
	}
}

func TestTopKNeighbors(t *testing.T) {
	sim := [][]float64{
		{1.0, 0.9, 0.5, 0.1},
		{0.9, 1.0, 0.2, 0.3},
		{0.5, 0.2, 1.0, 0.8},
		{0.1, 0.3, 0.8, 1.0},
	}
	got, err := TopKNeighbors(sim, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("TopKNeighbors(0, 2) = %v, want [1 2]", got)
	}
	// k larger than available neighbors is clamped.
	got, _ = TopKNeighbors(sim, 0, 10)
	if len(got) != 3 {
		t.Errorf("clamped k: got %d neighbors, want 3", len(got))
	}
	if _, err := TopKNeighbors(sim, -1, 1); !errors.Is(err, ErrInput) {
		t.Errorf("bad row: want ErrInput, got %v", err)
	}
	if _, err := TopKNeighbors(sim, 0, -1); !errors.Is(err, ErrInput) {
		t.Errorf("negative k: want ErrInput, got %v", err)
	}
}

func TestTopKNeighborsDeterministicTies(t *testing.T) {
	sim := [][]float64{
		{1, 0.5, 0.5, 0.5},
		{0.5, 1, 0.5, 0.5},
		{0.5, 0.5, 1, 0.5},
		{0.5, 0.5, 0.5, 1},
	}
	got, err := TopKNeighbors(sim, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tie-break not deterministic: %v", got)
			break
		}
	}
}

func TestPrecisionRecallAtKPerfect(t *testing.T) {
	// Two tight groups: perfect separation gives P = R = 1 for all.
	emb := [][]float64{
		{1, 0}, {0.99, 0.01}, {0.98, 0.02},
		{0, 1}, {0.01, 0.99}, {0.02, 0.98},
	}
	labels := []string{"a", "a", "a", "b", "b", "b"}
	sim, err := CosineSimilarityMatrix(emb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		pr, err := PrecisionRecallAtK(sim, labels, i)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Precision != 1 || pr.Recall != 1 || pr.K != 2 {
			t.Errorf("column %d: %+v, want P=R=1, K=2", i, pr)
		}
	}
}

func TestPrecisionRecallAtKSingleton(t *testing.T) {
	emb := [][]float64{{1, 0}, {0, 1}}
	labels := []string{"only", "other"}
	sim, _ := CosineSimilarityMatrix(emb)
	pr, err := PrecisionRecallAtK(sim, labels, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pr.K != 0 || pr.Precision != 0 || pr.Recall != 0 {
		t.Errorf("singleton type should yield zero PRResult, got %+v", pr)
	}
}

func TestPrecisionRecallValidation(t *testing.T) {
	sim := [][]float64{{1, 0}, {0, 1}}
	if _, err := PrecisionRecallAtK(sim, []string{"a"}, 0); !errors.Is(err, ErrInput) {
		t.Errorf("label count mismatch: want ErrInput, got %v", err)
	}
	if _, err := PrecisionRecallAtK(sim, []string{"a", "b"}, 5); !errors.Is(err, ErrInput) {
		t.Errorf("row out of range: want ErrInput, got %v", err)
	}
}

func TestAveragePrecisionByTypePerfectAndChance(t *testing.T) {
	emb := [][]float64{
		{1, 0}, {0.99, 0.01},
		{0, 1}, {0.01, 0.99},
	}
	labels := []string{"a", "a", "b", "b"}
	ap, err := AveragePrecisionByType(emb, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ap != 1 {
		t.Errorf("perfectly separated: AP = %v, want 1", ap)
	}
	// Identical embeddings: neighbours are arbitrary → AP must be < 1.
	same := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	ap, err = AveragePrecisionByType(same, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ap >= 1 {
		t.Errorf("indistinguishable embeddings: AP = %v, want < 1", ap)
	}
}

func TestAverageRecallByType(t *testing.T) {
	emb := [][]float64{
		{1, 0}, {0.99, 0.01},
		{0, 1}, {0.01, 0.99},
	}
	labels := []string{"a", "a", "b", "b"}
	ar, err := AverageRecallByType(emb, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ar != 1 {
		t.Errorf("perfectly separated: AR = %v, want 1", ar)
	}
}

func TestAveragePrecisionAllSingletonsFails(t *testing.T) {
	emb := [][]float64{{1, 0}, {0, 1}}
	if _, err := AveragePrecisionByType(emb, []string{"a", "b"}); !errors.Is(err, ErrInput) {
		t.Errorf("all singleton types: want ErrInput, got %v", err)
	}
}

func TestClusterACCPerfect(t *testing.T) {
	labels := []string{"x", "x", "y", "y", "z"}
	pred := []int{2, 2, 0, 0, 1} // same partition under renaming
	acc, err := ClusterACC(labels, pred)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Errorf("ACC = %v, want 1", acc)
	}
}

func TestClusterACCPartial(t *testing.T) {
	labels := []string{"x", "x", "x", "y", "y", "y"}
	pred := []int{0, 0, 1, 1, 1, 1}
	// Best mapping: 0→x, 1→y gives 2 + 3 = 5 of 6 correct.
	acc, err := ClusterACC(labels, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(acc, 5.0/6, 1e-12) {
		t.Errorf("ACC = %v, want 5/6", acc)
	}
}

func TestClusterACCMoreClustersThanClasses(t *testing.T) {
	labels := []string{"x", "x", "y", "y"}
	pred := []int{0, 1, 2, 2}
	// Map 0→x (or 1→x) and 2→y: 1 + 2 = 3 of 4.
	acc, err := ClusterACC(labels, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(acc, 0.75, 1e-12) {
		t.Errorf("ACC = %v, want 0.75", acc)
	}
}

func TestClusterACCValidation(t *testing.T) {
	if _, err := ClusterACC(nil, nil); !errors.Is(err, ErrInput) {
		t.Errorf("empty: want ErrInput, got %v", err)
	}
	if _, err := ClusterACC([]string{"a"}, []int{0, 1}); !errors.Is(err, ErrInput) {
		t.Errorf("length mismatch: want ErrInput, got %v", err)
	}
}

func TestARIIdenticalPartitions(t *testing.T) {
	labels := []string{"a", "a", "b", "b", "c"}
	pred := []int{5, 5, 9, 9, 7}
	ari, err := AdjustedRandIndex(labels, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(ari, 1, 1e-12) {
		t.Errorf("ARI(identical) = %v, want 1", ari)
	}
}

func TestARIKnownValue(t *testing.T) {
	// Classic example: ARI of this split is 0.24242...
	labels := []string{"a", "a", "a", "b", "b", "b"}
	pred := []int{0, 0, 1, 1, 2, 2}
	ari, err := AdjustedRandIndex(labels, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(ari, 0.24242424242424243, 1e-9) {
		t.Errorf("ARI = %v, want 0.2424...", ari)
	}
}

func TestARIDegenerateSingleCluster(t *testing.T) {
	labels := []string{"a", "a", "a"}
	pred := []int{0, 0, 0}
	ari, err := AdjustedRandIndex(labels, pred)
	if err != nil {
		t.Fatal(err)
	}
	if ari != 1 {
		t.Errorf("both single-cluster: ARI = %v, want 1", ari)
	}
	// One side trivial, other not: agreement cannot exceed chance.
	pred = []int{0, 1, 2}
	ari, err = AdjustedRandIndex(labels, pred)
	if err != nil {
		t.Fatal(err)
	}
	if ari != 0 {
		t.Errorf("trivial vs discrete: ARI = %v, want 0", ari)
	}
}

func TestARIPermutationInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		labels := make([]string, n)
		pred := make([]int, n)
		for i := range labels {
			labels[i] = string(rune('a' + rng.Intn(4)))
			pred[i] = rng.Intn(4)
		}
		ari1, err := AdjustedRandIndex(labels, pred)
		if err != nil {
			return false
		}
		// Rename predicted clusters by a fixed permutation.
		perm := map[int]int{0: 3, 1: 2, 2: 1, 3: 0}
		renamed := make([]int, n)
		for i, p := range pred {
			renamed[i] = perm[p]
		}
		ari2, err := AdjustedRandIndex(labels, renamed)
		if err != nil {
			return false
		}
		return mathx.AlmostEqual(ari1, ari2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestARIBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		labels := make([]string, n)
		pred := make([]int, n)
		for i := range labels {
			labels[i] = string(rune('a' + rng.Intn(5)))
			pred[i] = rng.Intn(5)
		}
		ari, err := AdjustedRandIndex(labels, pred)
		if err != nil {
			return false
		}
		return ari <= 1+1e-9 && ari >= -1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestACCAtLeastAsGoodAsRawAgreementProperty(t *testing.T) {
	// ACC with optimal mapping must be >= max-class frequency baseline is not
	// guaranteed, but it must be >= raw agreement under the identity mapping
	// of any particular labeling. We verify ACC >= fraction of the largest
	// predicted-true pair, a weak sanity bound, plus bounds in [0, 1].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		labels := make([]string, n)
		pred := make([]int, n)
		for i := range labels {
			labels[i] = string(rune('a' + rng.Intn(3)))
			pred[i] = rng.Intn(3)
		}
		acc, err := ClusterACC(labels, pred)
		if err != nil {
			return false
		}
		return acc >= 0 && acc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
