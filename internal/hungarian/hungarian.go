// Package hungarian implements the Hungarian (Kuhn–Munkres) algorithm for the
// minimum-cost assignment problem in O(n^3). It is the optimal-matching engine
// behind the clustering accuracy (ACC) metric of Table 4: predicted cluster
// labels are mapped onto ground-truth labels by the permutation that
// maximizes agreement.
package hungarian

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned for empty or ragged cost matrices.
var ErrShape = errors.New("hungarian: invalid cost matrix")

// Solve returns the assignment of rows to columns minimizing total cost for a
// square cost matrix. assignment[i] = j means row i is assigned to column j.
// The matrix must be square and rectangular; costs may be any finite floats.
func Solve(cost [][]float64) (assignment []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, fmt.Errorf("%w: empty", ErrShape)
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, 0, fmt.Errorf("%w: non-finite cost at (%d, %d)", ErrShape, i, j)
			}
		}
	}

	// Jonker-style O(n^3) shortest augmenting path formulation with
	// potentials. Internally 1-indexed to keep the sentinel row/col at 0.
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row assigned to column j (0 = none)
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	assignment = make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assignment[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][assignment[i]]
	}
	return assignment, total, nil
}

// MaximizeProfit solves the maximum-profit assignment by negating the profit
// matrix and calling Solve. It returns the assignment and the total profit.
func MaximizeProfit(profit [][]float64) (assignment []int, total float64, err error) {
	n := len(profit)
	if n == 0 {
		return nil, 0, fmt.Errorf("%w: empty", ErrShape)
	}
	cost := make([][]float64, n)
	for i, row := range profit {
		if len(row) != n {
			return nil, 0, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(row), n)
		}
		cost[i] = make([]float64, n)
		for j, v := range row {
			cost[i][j] = -v
		}
	}
	assignment, negTotal, err := Solve(cost)
	if err != nil {
		return nil, 0, err
	}
	return assignment, -negTotal, nil
}
