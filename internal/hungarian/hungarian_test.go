package hungarian

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSmall(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assignment, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Errorf("total = %v, want 5", total)
	}
	want := []int{1, 0, 2}
	for i, j := range want {
		if assignment[i] != j {
			t.Errorf("assignment = %v, want %v", assignment, want)
			break
		}
	}
}

func TestSolveIdentityDiagonal(t *testing.T) {
	// Zero diagonal, expensive elsewhere: identity assignment is optimal.
	n := 6
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = 10
			}
		}
	}
	assignment, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("total = %v, want 0", total)
	}
	for i, j := range assignment {
		if i != j {
			t.Errorf("assignment[%d] = %d, want %d", i, j, i)
		}
	}
}

func TestSolveSingleElement(t *testing.T) {
	assignment, total, err := Solve([][]float64{{3.5}})
	if err != nil || total != 3.5 || assignment[0] != 0 {
		t.Errorf("Solve([[3.5]]) = %v, %v, %v", assignment, total, err)
	}
}

func TestSolveNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 0},
		{0, -5},
	}
	_, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != -10 {
		t.Errorf("total = %v, want -10", total)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, _, err := Solve(nil); !errors.Is(err, ErrShape) {
		t.Errorf("empty: want ErrShape, got %v", err)
	}
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Errorf("ragged: want ErrShape, got %v", err)
	}
	if _, _, err := Solve([][]float64{{math.NaN()}}); !errors.Is(err, ErrShape) {
		t.Errorf("NaN: want ErrShape, got %v", err)
	}
	if _, _, err := Solve([][]float64{{math.Inf(1)}}); !errors.Is(err, ErrShape) {
		t.Errorf("Inf: want ErrShape, got %v", err)
	}
}

// bruteForce finds the optimal assignment by checking all permutations.
func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			var tot float64
			for i, j := range perm {
				tot += cost[i][j]
			}
			if tot < best {
				best = tot
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return best
}

func TestSolveMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6) // up to 7x7 is fine for brute force
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*200-100) / 4
			}
		}
		_, total, err := Solve(cost)
		if err != nil {
			return false
		}
		return math.Abs(total-bruteForce(cost)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveAssignmentIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.NormFloat64()
			}
		}
		assignment, _, err := Solve(cost)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, j := range assignment {
			if j < 0 || j >= n || seen[j] {
				return false
			}
			seen[j] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaximizeProfit(t *testing.T) {
	profit := [][]float64{
		{10, 1},
		{1, 10},
	}
	assignment, total, err := MaximizeProfit(profit)
	if err != nil {
		t.Fatal(err)
	}
	if total != 20 {
		t.Errorf("total = %v, want 20", total)
	}
	if assignment[0] != 0 || assignment[1] != 1 {
		t.Errorf("assignment = %v, want identity", assignment)
	}
	if _, _, err := MaximizeProfit(nil); !errors.Is(err, ErrShape) {
		t.Errorf("empty: want ErrShape, got %v", err)
	}
	if _, _, err := MaximizeProfit([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Errorf("ragged: want ErrShape, got %v", err)
	}
}
