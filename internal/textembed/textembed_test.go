package textembed

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(4); !errors.Is(err, ErrInput) {
		t.Errorf("dim too small: want ErrInput, got %v", err)
	}
	e, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	if e.Dim() != 64 {
		t.Errorf("Dim = %d, want 64", e.Dim())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(1) should panic")
		}
	}()
	MustNew(1)
}

func TestEmbedDeterministic(t *testing.T) {
	e := MustNew(DefaultDim)
	a := e.Embed("Engine_Power")
	b := e.Embed("Engine_Power")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Embed is not deterministic")
		}
	}
}

func TestEmbedUnitNorm(t *testing.T) {
	e := MustNew(DefaultDim)
	for _, h := range []string{"price", "Score_Cricket", "engine_power_car", "x"} {
		v := e.Embed(h)
		var ss float64
		for _, x := range v {
			ss += x * x
		}
		if math.Abs(math.Sqrt(ss)-1) > 1e-9 {
			t.Errorf("Embed(%q) norm = %v, want 1", h, math.Sqrt(ss))
		}
	}
}

func TestEmbedEmptyIsZero(t *testing.T) {
	e := MustNew(DefaultDim)
	v := e.Embed("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty header must embed to zero vector")
		}
	}
	v = e.Embed("___")
	for _, x := range v {
		if x != 0 {
			t.Fatal("punctuation-only header must embed to zero vector")
		}
	}
}

func TestSharedTokensAreCloserThanUnrelated(t *testing.T) {
	e := MustNew(DefaultDim)
	cricket := e.Embed("Score_Cricket")
	rugby := e.Embed("Score_Rugby")
	weight := e.Embed("Package_Weight")
	if cosine(cricket, rugby) <= cosine(cricket, weight) {
		t.Errorf("Score_Cricket~Score_Rugby (%v) should exceed ~Package_Weight (%v)",
			cosine(cricket, rugby), cosine(cricket, weight))
	}
	if cosine(cricket, rugby) < 0.3 {
		t.Errorf("headers sharing a token should be clearly similar, cos = %v", cosine(cricket, rugby))
	}
}

func TestSynonymsShareCoordinates(t *testing.T) {
	e := MustNew(DefaultDim)
	price := e.Embed("price")
	cost := e.Embed("cost")
	year := e.Embed("year")
	if cosine(price, cost) <= cosine(price, year) {
		t.Errorf("price~cost (%v) should exceed price~year (%v)",
			cosine(price, cost), cosine(price, year))
	}
}

func TestCustomSynonymGroups(t *testing.T) {
	e := MustNew(DefaultDim, WithSynonyms([][]string{{"foo", "bar"}}))
	foo := e.Embed("foo")
	bar := e.Embed("bar")
	baz := e.Embed("baz")
	if cosine(foo, bar) <= cosine(foo, baz) {
		t.Errorf("custom synonyms: foo~bar (%v) should exceed foo~baz (%v)",
			cosine(foo, bar), cosine(foo, baz))
	}
}

func TestIdenticalHeadersMaxSimilarity(t *testing.T) {
	e := MustNew(DefaultDim)
	a := e.Embed("mileage_car")
	b := e.Embed("mileage_car")
	if math.Abs(cosine(a, b)-1) > 1e-9 {
		t.Errorf("identical headers cosine = %v, want 1", cosine(a, b))
	}
}

func TestCaseAndSeparatorInsensitivity(t *testing.T) {
	e := MustNew(DefaultDim)
	variants := []string{"enginePower", "engine_power", "Engine Power", "ENGINE-POWER"}
	base := e.Embed(variants[0])
	for _, v := range variants[1:] {
		if c := cosine(base, e.Embed(v)); c < 0.95 {
			t.Errorf("cosine(%q, %q) = %v, want ~1", variants[0], v, c)
		}
	}
}

func TestEmbedAll(t *testing.T) {
	e := MustNew(64)
	out := e.EmbedAll([]string{"a", "b", "c"})
	if len(out) != 3 || len(out[0]) != 64 {
		t.Fatalf("EmbedAll shape wrong: %d x %d", len(out), len(out[0]))
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"EnginePower_kW2", []string{"engine", "power", "k", "w", "2"}},
		{"snake_case_id", []string{"snake", "case", "id"}},
		{"Score_Cricket", []string{"score", "cricket"}},
		{"simple", []string{"simple"}},
		{"", nil},
		{"a1b", []string{"a", "1", "b"}},
		{"UPPER", []string{"upper"}},
		{"with  spaces", []string{"with", "spaces"}},
	}
	for _, tc := range tests {
		got := Tokenize(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}

func TestTokenizeNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEmbedBoundedCosineProperty(t *testing.T) {
	e := MustNew(128)
	f := func(a, b string) bool {
		c := cosine(e.Embed(a), e.Embed(b))
		return c >= -1-1e-9 && c <= 1+1e-9 && !math.IsNaN(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
