// Package textembed provides the deterministic header-embedding substitute
// for Sentence-BERT used throughout the reproduction (see DESIGN.md §4,
// substitution 2).
//
// The paper only needs SBERT for one property: lexically/semantically related
// column headers ("Score_Cricket", "Score_Rugby") must embed near each other
// and unrelated headers far apart. We obtain that property offline and
// deterministically with feature hashing: a header is tokenized (underscores,
// camelCase, digits), each token and each character trigram is hashed into a
// d-dimensional vector with a signed hash, token synonyms from a small,
// domain-relevant lexicon hash to shared coordinates, and the result is
// L2-normalized. Shared tokens therefore produce shared coordinates and high
// cosine similarity — exactly the signal the evaluation exercises.
package textembed

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"unicode"
)

// ErrInput is returned for invalid embedder construction.
var ErrInput = errors.New("textembed: invalid input")

// DefaultDim is the default embedding dimensionality. 384 matches the output
// width of the all-MiniLM SBERT family so downstream shapes look familiar.
const DefaultDim = 384

// Embedder turns header strings into fixed-width dense vectors.
type Embedder struct {
	dim int
	// synonyms maps a token to its canonical group token, so that e.g.
	// "cost", "price" and "amount" share coordinates.
	synonyms map[string]string
	// tokenWeight is the weight of whole-token features vs trigram features.
	tokenWeight float64
}

// Option configures an Embedder.
type Option func(*Embedder)

// WithSynonyms adds extra synonym groups: every token in a group is mapped
// to the group's first token.
func WithSynonyms(groups [][]string) Option {
	return func(e *Embedder) {
		for _, g := range groups {
			if len(g) < 2 {
				continue
			}
			canon := strings.ToLower(g[0])
			for _, w := range g {
				e.synonyms[strings.ToLower(w)] = canon
			}
		}
	}
}

// defaultSynonymGroups cover the tabular-data vocabulary that appears in the
// paper's corpora descriptions. The first entry of each group is canonical.
var defaultSynonymGroups = [][]string{
	{"price", "cost", "amount", "fee"},
	{"quantity", "count", "qty", "num", "number"},
	{"score", "points", "rating", "grade"},
	{"weight", "mass"},
	{"length", "len"},
	{"height", "elevation", "altitude"},
	{"duration", "time", "elapsed"},
	{"year", "yr"},
	{"age", "years"},
	{"temperature", "temp"},
	{"population", "pop"},
	{"identifier", "id", "code"},
	{"percent", "pct", "percentage", "ratio"},
	{"salary", "income", "wage", "pay"},
	{"speed", "velocity"},
	{"power", "wattage"},
	{"rank", "position", "order", "place"},
	{"value", "val"},
	{"mileage", "odometer"},
	{"latitude", "lat"},
	{"longitude", "lon", "lng"},
}

// New returns an Embedder with the given output dimensionality.
func New(dim int, opts ...Option) (*Embedder, error) {
	if dim < 8 {
		return nil, fmt.Errorf("%w: dim = %d, need >= 8", ErrInput, dim)
	}
	e := &Embedder{
		dim:         dim,
		synonyms:    make(map[string]string),
		tokenWeight: 3,
	}
	WithSynonyms(defaultSynonymGroups)(e)
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// MustNew is New that panics on error, for use with constant arguments.
func MustNew(dim int, opts ...Option) *Embedder {
	e, err := New(dim, opts...)
	if err != nil {
		panic(err)
	}
	return e
}

// Dim returns the embedding dimensionality.
func (e *Embedder) Dim() int { return e.dim }

// Embed returns the L2-normalized embedding of header. The empty string maps
// to the zero vector.
func (e *Embedder) Embed(header string) []float64 {
	out := make([]float64, e.dim)
	tokens := Tokenize(header)
	if len(tokens) == 0 {
		return out
	}
	for _, tok := range tokens {
		canon := tok
		if c, ok := e.synonyms[tok]; ok {
			canon = c
		}
		// Whole-token feature (strong signal).
		e.addFeature(out, "tok:"+canon, e.tokenWeight)
		// Character trigrams (robustness to morphology: "scores" ~ "score").
		for _, tri := range trigrams(canon) {
			e.addFeature(out, "tri:"+tri, 1)
		}
	}
	// Token bigrams capture compound headers ("engine power" vs "battery
	// power") without swamping the shared-token signal.
	for i := 1; i < len(tokens); i++ {
		e.addFeature(out, "big:"+tokens[i-1]+"_"+tokens[i], 1)
	}
	return l2norm(out)
}

// EmbedAll embeds a batch of headers, one row per header.
func (e *Embedder) EmbedAll(headers []string) [][]float64 {
	out := make([][]float64, len(headers))
	for i, h := range headers {
		out[i] = e.Embed(h)
	}
	return out
}

// addFeature hashes feature into two coordinates with signed weights, which
// reduces hash-collision bias (a standard trick in feature hashing).
func (e *Embedder) addFeature(vec []float64, feature string, weight float64) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(feature))
	v := h.Sum64()
	idx1 := int(v % uint64(e.dim))
	sign1 := 1.0
	if (v>>16)&1 == 1 {
		sign1 = -1
	}
	vec[idx1] += sign1 * weight
	v2 := v*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	idx2 := int(v2 % uint64(e.dim))
	sign2 := 1.0
	if (v2>>16)&1 == 1 {
		sign2 = -1
	}
	vec[idx2] += sign2 * weight * 0.5
}

func trigrams(tok string) []string {
	padded := "^" + tok + "$"
	if len(padded) < 3 {
		return []string{padded}
	}
	out := make([]string, 0, len(padded)-2)
	for i := 0; i+3 <= len(padded); i++ {
		out = append(out, padded[i:i+3])
	}
	return out
}

func l2norm(v []float64) []float64 {
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	if ss == 0 {
		return v
	}
	n := math.Sqrt(ss)
	for i := range v {
		v[i] /= n
	}
	return v
}

// Tokenize splits a header string into lowercase tokens on underscores,
// hyphens, spaces, punctuation, digit boundaries and camelCase humps.
// "EnginePower_kW2" → ["engine", "power", "kw", "2"].
func Tokenize(header string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(header)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r):
			// camelCase boundary: upper after lower starts a new token.
			if unicode.IsUpper(r) && i > 0 && unicode.IsLower(runes[i-1]) {
				flush()
			}
			// digit→letter boundary.
			if i > 0 && unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		case unicode.IsDigit(r):
			if i > 0 && unicode.IsLetter(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}
