// Package data generates the four synthetic benchmark corpora the
// reproduction evaluates on — stand-ins for GDS, WDC, Sato Tables and
// Git Tables (see DESIGN.md §4, substitution 1). Each corpus is a catalogue
// of semantic types; each type is a distribution family with type-specific
// parameters; each column of a type draws jittered per-column parameters and
// then samples its values. Every phenomenon the paper's evaluation probes is
// generated explicitly: overlapping value ranges across types, fine-grained
// subtypes of one coarse type with shifted scales, distinct vs overlapping
// header vocabularies, and repetitive integer-valued columns next to
// continuous ones.
package data

import (
	"math"
	"math/rand"

	"github.com/gem-embeddings/gem/internal/dist"
)

// ValueGen generates the values of one column: it first draws per-column
// parameters from rng (jitter) and then samples n cell values.
type ValueGen func(rng *rand.Rand, n int) []float64

// roundTo rounds v to the given number of decimal places; decimals < 0
// leaves v untouched.
func roundTo(v float64, decimals int) float64 {
	if decimals < 0 {
		return v
	}
	p := math.Pow(10, float64(decimals))
	return math.Round(v*p) / p
}

// clip limits v to [lo, hi]; a NaN bound disables that side.
func clip(v, lo, hi float64) float64 {
	if !math.IsNaN(lo) && v < lo {
		return lo
	}
	if !math.IsNaN(hi) && v > hi {
		return hi
	}
	return v
}

var unbounded = math.NaN()

// normalGen produces columns from Normal(mu', sigma') where mu' and sigma'
// are jittered per column: mu' = mu * (1 + locJitter*z), sigma' likewise.
func normalGen(mu, sigma, locJitter, scaleJitter float64, decimals int, lo, hi float64) ValueGen {
	return func(rng *rand.Rand, n int) []float64 {
		m := mu * (1 + locJitter*rng.NormFloat64())
		s := math.Abs(sigma * (1 + scaleJitter*rng.NormFloat64()))
		if s <= 0 {
			s = sigma
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = roundTo(clip(m+s*rng.NormFloat64(), lo, hi), decimals)
		}
		return out
	}
}

// uniformGen produces columns from Uniform(lo', hi') with per-column
// endpoint jitter proportional to the width.
func uniformGen(lo, hi, jitter float64, decimals int) ValueGen {
	return func(rng *rand.Rand, n int) []float64 {
		w := hi - lo
		l := lo + jitter*w*rng.NormFloat64()
		h := hi + jitter*w*rng.NormFloat64()
		if h <= l {
			l, h = lo, hi
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = roundTo(l+rng.Float64()*(h-l), decimals)
		}
		return out
	}
}

// lognormalGen produces columns from LogNormal(mu', sigma') with additive
// jitter on mu (which is multiplicative on the value scale).
func lognormalGen(mu, sigma, muJitter float64, decimals int) ValueGen {
	return func(rng *rand.Rand, n int) []float64 {
		m := mu + muJitter*rng.NormFloat64()
		s := math.Abs(sigma * (1 + 0.1*rng.NormFloat64()))
		if s <= 0 {
			s = sigma
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = roundTo(math.Exp(m+s*rng.NormFloat64()), decimals)
		}
		return out
	}
}

// gammaGen produces columns from Gamma(shape', rate) with per-column shape
// jitter; useful for durations and counts with a right tail.
func gammaGen(shape, rate, jitter float64, decimals int) ValueGen {
	return func(rng *rand.Rand, n int) []float64 {
		sh := math.Abs(shape * (1 + jitter*rng.NormFloat64()))
		if sh <= 0.05 {
			sh = shape
		}
		g := dist.Gamma{Alpha: sh, Beta: rate}
		out := make([]float64, n)
		for i := range out {
			out[i] = roundTo(g.Rand(rng), decimals)
		}
		return out
	}
}

// betaScaledGen produces columns from scale * Beta(a', b'), e.g. percentages.
func betaScaledGen(a, b, scale, jitter float64, decimals int) ValueGen {
	return func(rng *rand.Rand, n int) []float64 {
		aa := math.Abs(a * (1 + jitter*rng.NormFloat64()))
		bb := math.Abs(b * (1 + jitter*rng.NormFloat64()))
		if aa <= 0.05 {
			aa = a
		}
		if bb <= 0.05 {
			bb = b
		}
		d := dist.Beta{A: aa, B: bb}
		out := make([]float64, n)
		for i := range out {
			out[i] = roundTo(scale*d.Rand(rng), decimals)
		}
		return out
	}
}

// discreteGen produces highly repetitive columns over a small support set —
// ratings, shoe sizes, Likert scales. Each column draws its own categorical
// weights from a symmetric Dirichlet with concentration conc (small conc →
// spiky columns such as the paper's constant 'Rating_Movie' example).
func discreteGen(support []float64, conc float64) ValueGen {
	return func(rng *rand.Rand, n int) []float64 {
		w := dirichlet(rng, len(support), conc)
		out := make([]float64, n)
		for i := range out {
			out[i] = support[sampleIndex(rng, w)]
		}
		return out
	}
}

// discreteSpikyGen produces repetitive integer columns over [lo, hi] with a
// per-column spiky Dirichlet weighting — "order"-like columns where a few
// values dominate (low unique count, low entropy) even though the nominal
// range matches a uniform neighbour type.
func discreteSpikyGen(lo, hi int, conc float64) ValueGen {
	support := make([]float64, hi-lo+1)
	for i := range support {
		support[i] = float64(lo + i)
	}
	return discreteGen(support, conc)
}

// mixtureGen produces bimodal/multimodal columns: a per-column weighted blend
// of the provided generators (each component re-jitters independently).
func mixtureGen(parts ...ValueGen) ValueGen {
	return func(rng *rand.Rand, n int) []float64 {
		w := dirichlet(rng, len(parts), 2)
		// Pre-draw each part's column closure via a one-shot sampler: we
		// sample counts per part, generate, then shuffle.
		counts := make([]int, len(parts))
		for i := 0; i < n; i++ {
			counts[sampleIndex(rng, w)]++
		}
		out := make([]float64, 0, n)
		for p, c := range counts {
			if c == 0 {
				continue
			}
			out = append(out, parts[p](rng, c)...)
		}
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
}

// shiftScaleGen wraps g, applying x -> offset + factor*x to every value.
// This is how fine-grained subtypes of one coarse type (Score_Cricket vs
// Score_Rugby) get systematically different scales.
func shiftScaleGen(g ValueGen, offset, factor float64, decimals int) ValueGen {
	return func(rng *rand.Rand, n int) []float64 {
		out := g(rng, n)
		for i := range out {
			out[i] = roundTo(offset+factor*out[i], decimals)
		}
		return out
	}
}

// dirichlet draws a symmetric Dirichlet(conc) weight vector of length k.
func dirichlet(rng *rand.Rand, k int, conc float64) []float64 {
	w := make([]float64, k)
	var sum float64
	g := dist.Gamma{Alpha: conc, Beta: 1}
	for i := range w {
		w[i] = g.Rand(rng) + 1e-12
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// sampleIndex draws an index from the categorical distribution w.
func sampleIndex(rng *rand.Rand, w []float64) int {
	u := rng.Float64()
	var cum float64
	for i, v := range w {
		cum += v
		if u <= cum {
			return i
		}
	}
	return len(w) - 1
}
