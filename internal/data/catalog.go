package data

import (
	"fmt"
	"math/rand"
)

// archetype is a reusable semantic-type blueprint: a header stem plus a
// family of value generators indexed by a variant number. Different variants
// of the same archetype are *systematically* shifted/scaled so that two
// coarse types derived from one archetype (say "car_weight" and
// "package_weight") remain distributionally distinguishable — the exact
// phenomenon the paper's introduction motivates.
type archetype struct {
	stem string
	mk   func(variant int) ValueGen
}

// vfac converts a variant index into a multiplicative factor: 1.0, 1.45,
// 0.72, 2.1, ... alternating above and below the base scale.
func vfac(variant int) float64 {
	switch variant % 6 {
	case 0:
		return 1
	case 1:
		return 1.45
	case 2:
		return 0.72
	case 3:
		return 2.1
	case 4:
		return 0.5
	default:
		return 3.2
	}
}

// catalog returns the base archetype library shared by all corpora.
func catalog() []archetype {
	return []archetype{
		{"age", func(v int) ValueGen {
			return normalGen(35*vfac(v), 12, 0.08, 0.15, 0, 0, 110*vfac(v))
		}},
		{"weight", func(v int) ValueGen {
			return normalGen(70*vfac(v), 15*vfac(v), 0.1, 0.15, 1, 0, unbounded)
		}},
		{"height", func(v int) ValueGen {
			return normalGen(170*vfac(v), 12*vfac(v), 0.05, 0.1, 1, 0, unbounded)
		}},
		{"price", func(v int) ValueGen {
			return lognormalGen(3.5+0.8*float64(v%5), 0.55+0.25*float64(v%3), 0.25, 2-(v%3))
		}},
		{"salary", func(v int) ValueGen {
			return lognormalGen(10.8+0.3*float64(v%4), 0.35+0.15*float64(v%3), 0.15, 0)
		}},
		{"population", func(v int) ValueGen {
			return lognormalGen(9+0.6*float64(v%5), 0.7+0.3*float64(v%3), 0.3, 0)
		}},
		{"year", func(v int) ValueGen {
			lo := 1950 - 20*(v%4)
			return uniformGen(float64(lo), 2024, 0.02, 0)
		}},
		{"score", func(v int) ValueGen {
			return normalGen(75*vfac(v), 12*vfac(v), 0.05, 0.1, 1, 0, 100*vfac(v)+30)
		}},
		{"rating", func(v int) ValueGen {
			top := 5 + 5*(v%2) // 1..5 or 1..10 scales
			support := make([]float64, top)
			for i := range support {
				support[i] = float64(i + 1)
			}
			return discreteGen(support, 0.6)
		}},
		{"rank", func(v int) ValueGen {
			return uniformGen(1, 40*vfac(v)+10, 0.05, 0)
		}},
		{"duration", func(v int) ValueGen {
			return gammaGen(2, 0.008/vfac(v), 0.2, 1)
		}},
		{"temperature", func(v int) ValueGen {
			return normalGen(18+10*float64(v%3), 8, 0.2, 0.15, 1, unbounded, unbounded)
		}},
		{"percent", func(v int) ValueGen {
			return betaScaledGen(2*vfac(v), 5, 100, 0.2, 1)
		}},
		{"count", func(v int) ValueGen {
			return gammaGen(1.5, 0.05/vfac(v), 0.25, 0)
		}},
		{"distance", func(v int) ValueGen {
			return lognormalGen(2+0.7*float64(v%5), 0.6+0.25*float64(v%3), 0.25, 1+(v%2))
		}},
		{"area", func(v int) ValueGen {
			return lognormalGen(4+0.8*float64(v%4), 0.65+0.3*float64(v%3), 0.25, 0)
		}},
		{"speed", func(v int) ValueGen {
			return normalGen(80*vfac(v), 25*vfac(v), 0.1, 0.15, 1, 0, unbounded)
		}},
		{"power", func(v int) ValueGen {
			return lognormalGen(4.6+0.6*float64(v%4), 0.55+0.25*float64(v%3), 0.2, 0)
		}},
		{"energy", func(v int) ValueGen {
			return gammaGen(2, 0.002/vfac(v), 0.2, 0)
		}},
		{"mileage", func(v int) ValueGen {
			return lognormalGen(9.2+0.4*float64(v%3), 0.65+0.3*float64(v%2), 0.25, 0)
		}},
		{"latitude", func(v int) ValueGen {
			span := 90 / vfac(v)
			return uniformGen(-span, span, 0.05, 4)
		}},
		{"longitude", func(v int) ValueGen {
			span := 180 / vfac(v)
			return uniformGen(-span, span, 0.05, 4)
		}},
		{"gdp", func(v int) ValueGen {
			return lognormalGen(12+0.6*float64(v%3), 0.6+0.3*float64(v%2), 0.3, 0)
		}},
		{"volume", func(v int) ValueGen {
			return lognormalGen(3+0.7*float64(v%4), 0.55+0.3*float64(v%3), 0.2, 2-(v%2))
		}},
		{"depth", func(v int) ValueGen {
			return gammaGen(2, 0.1/vfac(v), 0.2, 1)
		}},
		{"pressure", func(v int) ValueGen {
			return normalGen(1013*vfac(v), 30*vfac(v), 0.02, 0.1, 1, 0, unbounded)
		}},
		{"frequency", func(v int) ValueGen {
			return lognormalGen(5+float64(v%3), 0.7+0.3*float64(v%2), 0.3, 1)
		}},
		{"voltage", func(v int) ValueGen {
			base := []float64{110, 120, 220, 230, 240}
			support := make([]float64, len(base))
			for i, b := range base {
				support[i] = roundTo(b*vfac(v), 0)
			}
			return discreteGen(support, 1.5)
		}},
		{"quantity", func(v int) ValueGen {
			return gammaGen(2.2, 0.1/vfac(v), 0.25, 0)
		}},
	}
}

// fineSubs maps an archetype stem to realistic sub-entity names used when a
// coarse type is refined into fine-grained subtypes. Stems without an entry
// fall back to regional qualifiers.
var fineSubs = map[string][]string{
	"score":    {"cricket", "rugby", "football", "basketball", "tennis"},
	"rating":   {"movie", "book", "hotel", "app", "restaurant"},
	"price":    {"house", "car", "ticket", "meal", "stock"},
	"weight":   {"human", "package", "animal", "vehicle"},
	"height":   {"person", "mountain", "building", "tree"},
	"power":    {"engine_car", "battery_device", "plant", "motor"},
	"duration": {"flight", "movie", "call", "task"},
	"rank":     {"journal", "book", "team", "player"},
	"count":    {"stock", "visitor", "error", "click"},
	"age":      {"patient", "employee", "building", "account"},
	"speed":    {"car", "wind", "network", "runner"},
	"distance": {"commute", "delivery", "race", "orbit"},
	"year":     {"publication", "founding", "birth", "model"},
	"area":     {"apartment", "farm", "forest", "lake"},
	"volume":   {"bottle", "tank", "shipment", "reservoir"},
}

var regionSubs = []string{"eu", "us", "asia", "africa", "oceania"}

// subsFor returns fine sub-entity names for a stem.
func subsFor(stem string) []string {
	if s, ok := fineSubs[stem]; ok {
		return s
	}
	return regionSubs
}

// typeSpec fully describes one fine-grained semantic type in a corpus.
type typeSpec struct {
	coarse  string
	fine    string
	gen     ValueGen
	headers []string
}

// headersDistinct builds the GDS-style header pool: every header names the
// fine type explicitly (plus mild decoration), so header embeddings separate
// fine types well.
func headersDistinct(fine string) []string {
	return []string{
		fine,
		fine + "_val",
		fine + "_2023",
		"avg_" + fine,
		fine + "_measured",
	}
}

// headersOverlap builds the WDC-style header pool for a coarse type: most
// headers carry the coarse identity (stem + group) but none carry the fine
// subtype, so headers partially identify the coarse type while fine types
// under one coarse type stay indistinguishable by header alone
// ("Score_Cricket" and "Score_Rugby" both present sports-score headers).
// The plain stem variant is additionally ambiguous across groups, giving the
// mixed header quality the paper describes for WDC.
func headersOverlap(stem, group string) []string {
	return []string{
		stem,
		stem + "_" + group,
		"total_" + stem,
		group + "_" + stem,
		stem + "_value",
	}
}

// domainNames used to derive multiple coarse types from one archetype in the
// GDS-like corpus.
var gdsDomains = []string{"car", "city", "hospital", "school", "store", "device", "bank", "farm"}

// wdcGroups used to derive multiple coarse types per archetype in the
// WDC-like corpus.
var wdcGroups = []string{"retail", "sports", "media", "travel", "social", "finance", "science"}

// gdsTypes builds the GDS-like catalogue: |catalog| x |domains| coarse types
// trimmed to nCoarse, with fine refinements on every refineEvery-th coarse
// type, in the spirit of the paper's 86 coarse → 96 fine refinement.
func gdsTypes(nCoarse, refineEvery int) []typeSpec {
	arch := catalog()
	var specs []typeSpec
	coarseIdx := 0
	for d, dom := range gdsDomains {
		for a, at := range arch {
			if coarseIdx >= nCoarse {
				return specs
			}
			coarse := dom + "_" + at.stem
			variant := d*len(arch) + a
			if refineEvery > 0 && coarseIdx%refineEvery == refineEvery-1 {
				// Refine into two fine subtypes with shifted scales and
				// distinct headers (e.g. engine_power_car vs
				// battery_power_device).
				subs := subsFor(at.stem)
				for s := 0; s < 2; s++ {
					fine := coarse + "_" + subs[s%len(subs)]
					gen := shiftScaleGen(at.mk(variant), 0, 1+0.9*float64(s), -1)
					specs = append(specs, typeSpec{
						coarse:  coarse,
						fine:    fine,
						gen:     gen,
						headers: headersDistinct(fine),
					})
				}
			} else {
				specs = append(specs, typeSpec{
					coarse:  coarse,
					fine:    coarse,
					gen:     at.mk(variant),
					headers: headersDistinct(coarse),
				})
			}
			coarseIdx++
		}
	}
	return specs
}

// wdcTypes builds the WDC-like catalogue: |catalog| x |groups| coarse types
// trimmed to nCoarse, each refined into a cycle of 1–4 fine subtypes with
// systematically different scales, and overlapping coarse-grained headers.
func wdcTypes(nCoarse int) []typeSpec {
	arch := catalog()
	fineCycle := []int{2, 2, 3, 2, 1, 3, 2, 4}
	var specs []typeSpec
	coarseIdx := 0
	for g, group := range wdcGroups {
		for a, at := range arch {
			if coarseIdx >= nCoarse {
				return specs
			}
			coarse := at.stem + "_" + group
			variant := g*len(arch) + a
			nFine := fineCycle[coarseIdx%len(fineCycle)]
			subs := subsFor(at.stem)
			for s := 0; s < nFine; s++ {
				fine := coarse
				headers := headersOverlap(at.stem, group)
				if nFine > 1 {
					sub := subs[s%len(subs)]
					fine = coarse + "_" + sub
					// Each subtype's pool mixes fine-informative variants
					// ("cricket_score") among the dominant coarse-only ones
					// ("score"), mirroring real WDC where a minority of
					// columns name the sub-entity.
					headers = append(headers, sub+"_"+at.stem, at.stem+"_"+sub)
				}
				gen := shiftScaleGen(at.mk(variant), 0, 1+0.8*float64(s), -1)
				specs = append(specs, typeSpec{
					coarse:  coarse,
					fine:    fine,
					gen:     gen,
					headers: headers,
				})
			}
			coarseIdx++
		}
	}
	return specs
}

// satoTypes builds the Sato-Tables-like catalogue: 12 types whose value
// ranges deliberately collide (age vs weight in the 30s, rank vs order vs
// position as small integers, year vs duration) — the collisions the paper
// reports in §4.2.1.
func satoTypes() []typeSpec {
	mk := func(name string, gen ValueGen) typeSpec {
		return typeSpec{coarse: name, fine: name, gen: gen, headers: []string{name}}
	}
	// The collisions are deliberately same-range, different-shape: age and
	// weight share the low-30s center but differ in granularity (integer vs
	// one decimal); rank, order and position share the small-integer range
	// but differ in entropy/repetitiveness; price and count share scale but
	// differ in tail and decimals. These are the distinctions the paper's
	// §4.2.1 anecdotes attribute to Gem's distributional + statistical view.
	return []typeSpec{
		mk("age", normalGen(33, 6, 0.05, 0.1, 0, 18, 90)),
		mk("weight", normalGen(33, 6.5, 0.06, 0.12, 1, 10, unbounded)),
		mk("year", uniformGen(1950, 2023, 0.02, 0)),
		mk("duration", gammaGen(3, 0.012, 0.15, 1)),
		mk("order", discreteSpikyGen(1, 40, 0.4)),
		mk("position", uniformGen(1, 15, 0.1, 0)),
		mk("rank", uniformGen(1, 40, 0.08, 0)),
		mk("score", normalGen(74, 11, 0.05, 0.1, 1, 0, 100)),
		mk("population", lognormalGen(9.5, 1.0, 0.25, 0)),
		mk("gdp", lognormalGen(12.5, 0.9, 0.2, 0)),
		mk("price", lognormalGen(3.4, 0.9, 0.2, 2)),
		mk("count", gammaGen(1.6, 0.05, 0.2, 0)),
	}
}

// gitTypes builds the Git-Tables-like catalogue: 19 measurement-flavoured
// types annotated from a Schema.org-like vocabulary, the "no context" hard
// setting (values like [153, 228, 125, ...] could be duration, height,
// length or volume).
func gitTypes() []typeSpec {
	mk := func(name string, gen ValueGen) typeSpec {
		return typeSpec{coarse: name, fine: name, gen: gen, headers: []string{name}}
	}
	return []typeSpec{
		mk("duration", gammaGen(2.5, 0.011, 0.15, 0)),
		mk("height", normalGen(180, 45, 0.12, 0.15, 0, 0, unbounded)),
		mk("length", normalGen(210, 70, 0.15, 0.2, 0, 0, unbounded)),
		mk("volume", lognormalGen(5.2, 0.7, 0.2, 0)),
		mk("width", mixtureGen(
			discreteGen([]float64{5, 256, 512}, 1),
			normalGen(120, 60, 0.2, 0.2, 1, 0, unbounded))),
		mk("weight", normalGen(72, 16, 0.1, 0.15, 1, 0, unbounded)),
		mk("price", lognormalGen(3.6, 1.0, 0.2, 2)),
		mk("count", gammaGen(1.5, 0.04, 0.2, 0)),
		mk("area", lognormalGen(4.4, 1.1, 0.2, 0)),
		mk("speed", normalGen(85, 28, 0.1, 0.15, 1, 0, unbounded)),
		mk("depth", gammaGen(2, 0.09, 0.2, 1)),
		mk("radius", gammaGen(2.2, 0.055, 0.2, 2)),
		mk("pressure", normalGen(1010, 28, 0.02, 0.1, 1, 0, unbounded)),
		mk("energy", gammaGen(2, 0.0021, 0.2, 0)),
		mk("frequency", lognormalGen(5.5, 1.0, 0.25, 1)),
		mk("voltage", discreteGen([]float64{110, 120, 220, 230, 240}, 1.5)),
		mk("current", gammaGen(2, 0.35, 0.2, 2)),
		mk("distance", lognormalGen(2.4, 1.1, 0.2, 1)),
		mk("capacity", lognormalGen(6.1, 0.9, 0.25, 0)),
	}
}

// rotateHeader returns the i-th header for a type, cycling its pool and
// appending a disambiguating ordinal every full cycle so large types do not
// produce thousands of byte-identical headers.
func rotateHeader(pool []string, i int) string {
	h := pool[i%len(pool)]
	cycle := i / len(pool)
	if cycle == 0 {
		return h
	}
	return fmt.Sprintf("%s_%d", h, cycle)
}

// columnsForType draws the number of columns for one type uniformly in
// [minCols, maxCols], scaled, with a floor of 2 so precision@k stays defined.
func columnsForType(rng *rand.Rand, minCols, maxCols int, scale float64) int {
	n := minCols
	if maxCols > minCols {
		n += rng.Intn(maxCols - minCols + 1)
	}
	n = int(float64(n) * scale)
	if n < 2 {
		n = 2
	}
	return n
}
