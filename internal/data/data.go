package data

import (
	"fmt"
	"math/rand"

	"github.com/gem-embeddings/gem/internal/table"
)

// Grain selects which ground-truth label granularity a generated corpus
// carries (the paper evaluates GDS/WDC at both levels; Table 2 uses coarse,
// Table 3 uses fine).
type Grain int

const (
	// Coarse labels group fine subtypes ("score").
	Coarse Grain = iota
	// Fine labels separate subtypes ("score_cricket").
	Fine
)

// Config controls corpus generation.
type Config struct {
	// Seed makes generation deterministic. Corpora with the same seed are
	// bit-identical.
	Seed int64
	// Scale multiplies the number of columns per type; 1.0 reproduces the
	// full paper-sized corpus, smaller values generate faster corpora with
	// the same type structure. Default 1.0.
	Scale float64
	// Grain selects coarse or fine ground-truth labels. Default Coarse.
	Grain Grain
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// corpusShape bundles the per-corpus size constants.
type corpusShape struct {
	name             string
	minCols, maxCols int // columns per fine type before scaling
	minRows, maxRows int // rows per column
}

// build instantiates a corpus from its type specs.
func build(shape corpusShape, specs []typeSpec, cfg Config) *table.Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &table.Dataset{Name: shape.name}
	for ti, spec := range specs {
		nCols := columnsForType(rng, shape.minCols, shape.maxCols, cfg.scale())
		label := spec.coarse
		if cfg.Grain == Fine {
			label = spec.fine
		}
		for i := 0; i < nCols; i++ {
			rows := shape.minRows
			if shape.maxRows > shape.minRows {
				rows += rng.Intn(shape.maxRows - shape.minRows + 1)
			}
			// Headers are drawn randomly from the type's pool: real corpora
			// repeat headers across tables ("price" appears everywhere), and
			// sibling columns of one type frequently share the exact string.
			ds.Columns = append(ds.Columns, table.Column{
				Name:   spec.headers[rng.Intn(len(spec.headers))],
				Values: spec.gen(rng, rows),
				Type:   label,
				Table:  fmt.Sprintf("%s_t%03d", shape.name, ti),
			})
		}
	}
	return ds
}

// GDS generates the Google-Dataset-Search-like corpus: many coarse types
// (~86) refined to ~96 fine types, ~2.5k columns at scale 1, and distinct,
// informative headers (header-only precision is high on this corpus, paper
// Table 3).
func GDS(cfg Config) *table.Dataset {
	return build(corpusShape{
		name:    "GDS",
		minCols: 20, maxCols: 32,
		minRows: 40, maxRows: 150,
	}, gdsTypes(86, 9), cfg)
}

// WDC generates the Web-Data-Commons-like corpus: ~147 coarse types refined
// into ~325 fine subtypes with systematically different scales, ~2.9k
// columns at scale 1, and overlapping coarse-grained headers (header-only
// precision is low on this corpus, paper Table 3).
func WDC(cfg Config) *table.Dataset {
	return build(corpusShape{
		name:    "WDC",
		minCols: 5, maxCols: 13,
		minRows: 40, maxRows: 150,
	}, wdcTypes(147), cfg)
}

// SatoTables generates the Sato-Tables-like corpus: 12 types, ~2.2k columns
// at scale 1, with heavy value-range collisions between types (age vs
// weight, rank vs order vs position).
func SatoTables(cfg Config) *table.Dataset {
	return build(corpusShape{
		name:    "SatoTables",
		minCols: 160, maxCols: 210,
		minRows: 40, maxRows: 150,
	}, satoTypes(), cfg)
}

// GitTables generates the Git-Tables-like corpus: 19 measurement types, ~460
// columns at scale 1, minimal header context.
func GitTables(cfg Config) *table.Dataset {
	return build(corpusShape{
		name:    "GitTables",
		minCols: 18, maxCols: 30,
		minRows: 40, maxRows: 150,
	}, gitTypes(), cfg)
}

// AllCorpora returns the four corpora in the paper's order: GitTables,
// SatoTables, WDC, GDS (the column order of Table 2).
func AllCorpora(cfg Config) []*table.Dataset {
	return []*table.Dataset{
		GitTables(cfg),
		SatoTables(cfg),
		WDC(cfg),
		GDS(cfg),
	}
}

// Stats summarizes a corpus for Table 1.
type Stats struct {
	Name       string
	Columns    int
	Types      int
	TotalCells int
}

// Describe computes Table 1 statistics for a corpus.
func Describe(ds *table.Dataset) Stats {
	return Stats{
		Name:       ds.Name,
		Columns:    len(ds.Columns),
		Types:      ds.NumTypes(),
		TotalCells: ds.TotalValues(),
	}
}

// Figure1Columns returns the four motivating columns of the paper's
// Figure 1: Age and Rank share a bell shape around 30 while Test Score and
// Temperature share one around 75, yet all four have different semantic
// types.
func Figure1Columns(seed int64) []table.Column {
	rng := rand.New(rand.NewSource(seed))
	sample := func(gen ValueGen, n int) []float64 { return gen(rng, n) }
	return []table.Column{
		{Name: "Age", Type: "age", Values: sample(normalGen(30, 6, 0, 0, 0, 0, 110), 400)},
		{Name: "Rank", Type: "rank", Values: sample(normalGen(30, 5, 0, 0, 0, 1, 60), 400)},
		{Name: "Test Score", Type: "test_score", Values: sample(normalGen(75, 9, 0, 0, 1, 0, 100), 400)},
		{Name: "Temperature", Type: "temperature", Values: sample(normalGen(75, 10, 0, 0, 1, unbounded, unbounded), 400)},
	}
}

// ScalabilityDataset generates a single-purpose corpus with exactly nColumns
// columns for the Figure 5 runtime sweep, reusing the GDS type structure.
func ScalabilityDataset(nColumns int, seed int64) *table.Dataset {
	if nColumns < 1 {
		nColumns = 1
	}
	specs := gdsTypes(86, 9)
	rng := rand.New(rand.NewSource(seed))
	ds := &table.Dataset{Name: fmt.Sprintf("scal_%d", nColumns)}
	for i := 0; i < nColumns; i++ {
		spec := specs[i%len(specs)]
		rows := 40 + rng.Intn(111)
		ds.Columns = append(ds.Columns, table.Column{
			Name:   rotateHeader(spec.headers, i/len(specs)),
			Values: spec.gen(rng, rows),
			Type:   spec.coarse,
			Table:  ds.Name,
		})
	}
	return ds
}
