package data

import (
	"math"
	"math/rand"
	"testing"

	"github.com/gem-embeddings/gem/internal/stats"
)

func TestCorporaShapes(t *testing.T) {
	cfg := Config{Seed: 1, Scale: 0.1}
	tests := []struct {
		name      string
		ds        interface{ NumTypes() int }
		wantTypes int
	}{}
	_ = tests

	git := GitTables(cfg)
	if git.NumTypes() != 19 {
		t.Errorf("GitTables types = %d, want 19", git.NumTypes())
	}
	sato := SatoTables(cfg)
	if sato.NumTypes() != 12 {
		t.Errorf("SatoTables types = %d, want 12", sato.NumTypes())
	}
	gds := GDS(cfg)
	if n := gds.NumTypes(); n < 80 || n > 96 {
		t.Errorf("GDS coarse types = %d, want ~86", n)
	}
	wdc := WDC(cfg)
	if n := wdc.NumTypes(); n < 140 || n > 150 {
		t.Errorf("WDC coarse types = %d, want ~147", n)
	}
	for _, ds := range AllCorpora(cfg) {
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: %v", ds.Name, err)
		}
	}
}

func TestFineGrainHasMoreTypes(t *testing.T) {
	coarseGDS := GDS(Config{Seed: 2, Scale: 0.1, Grain: Coarse})
	fineGDS := GDS(Config{Seed: 2, Scale: 0.1, Grain: Fine})
	if fineGDS.NumTypes() <= coarseGDS.NumTypes() {
		t.Errorf("GDS fine types (%d) must exceed coarse (%d)",
			fineGDS.NumTypes(), coarseGDS.NumTypes())
	}
	coarseWDC := WDC(Config{Seed: 2, Scale: 0.1, Grain: Coarse})
	fineWDC := WDC(Config{Seed: 2, Scale: 0.1, Grain: Fine})
	if fineWDC.NumTypes() < 2*coarseWDC.NumTypes() {
		t.Errorf("WDC fine types (%d) should be ≳2x coarse (%d)",
			fineWDC.NumTypes(), coarseWDC.NumTypes())
	}
	// Same seed and scale: identical column count regardless of grain.
	if len(fineGDS.Columns) != len(coarseGDS.Columns) {
		t.Errorf("grain must not change column count: %d vs %d",
			len(fineGDS.Columns), len(coarseGDS.Columns))
	}
}

func TestFullScaleColumnCountsNearPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation skipped in -short mode")
	}
	cfg := Config{Seed: 3}
	checks := []struct {
		name   string
		got    int
		lo, hi int
	}{
		{"GDS", len(GDS(cfg).Columns), 2000, 3200},
		{"WDC", len(WDC(cfg).Columns), 2200, 3600},
		{"SatoTables", len(SatoTables(cfg).Columns), 1800, 2700},
		{"GitTables", len(GitTables(cfg).Columns), 350, 600},
	}
	for _, c := range checks {
		if c.got < c.lo || c.got > c.hi {
			t.Errorf("%s columns = %d, want in [%d, %d] (paper-comparable)", c.name, c.got, c.lo, c.hi)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := GitTables(Config{Seed: 7, Scale: 0.2})
	b := GitTables(Config{Seed: 7, Scale: 0.2})
	if len(a.Columns) != len(b.Columns) {
		t.Fatalf("column counts differ: %d vs %d", len(a.Columns), len(b.Columns))
	}
	for i := range a.Columns {
		ca, cb := a.Columns[i], b.Columns[i]
		if ca.Name != cb.Name || ca.Type != cb.Type || len(ca.Values) != len(cb.Values) {
			t.Fatalf("column %d metadata differs", i)
		}
		for j := range ca.Values {
			if ca.Values[j] != cb.Values[j] {
				t.Fatalf("column %d value %d differs: %v vs %v", i, j, ca.Values[j], cb.Values[j])
			}
		}
	}
	c := GitTables(Config{Seed: 8, Scale: 0.2})
	same := true
	for i := range a.Columns {
		if i >= len(c.Columns) || len(a.Columns[i].Values) != len(c.Columns[i].Values) {
			same = false
			break
		}
		for j := range a.Columns[i].Values {
			if a.Columns[i].Values[j] != c.Columns[i].Values[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical values")
	}
}

func TestEveryTypeHasAtLeastTwoColumns(t *testing.T) {
	for _, ds := range AllCorpora(Config{Seed: 4, Scale: 0.05}) {
		counts := make(map[string]int)
		for _, c := range ds.Columns {
			counts[c.Type]++
		}
		for typ, n := range counts {
			if n < 2 {
				t.Errorf("%s type %q has %d columns, want >= 2", ds.Name, typ, n)
			}
		}
	}
}

func TestSatoCollisions(t *testing.T) {
	// The signature Sato phenomenon: age and weight columns overlap in range.
	ds := SatoTables(Config{Seed: 5, Scale: 0.1})
	var ageMean, weightMean float64
	var ageN, weightN int
	for _, c := range ds.Columns {
		m, err := stats.Mean(c.Values)
		if err != nil {
			t.Fatal(err)
		}
		switch c.Type {
		case "age":
			ageMean += m
			ageN++
		case "weight":
			weightMean += m
			weightN++
		}
	}
	if ageN == 0 || weightN == 0 {
		t.Fatal("missing age or weight columns")
	}
	ageMean /= float64(ageN)
	weightMean /= float64(weightN)
	if math.Abs(ageMean-weightMean) > 15 {
		t.Errorf("age (%.1f) and weight (%.1f) should overlap in range", ageMean, weightMean)
	}
}

func TestWDCFineSubtypesHaveDifferentScales(t *testing.T) {
	ds := WDC(Config{Seed: 6, Scale: 0.2, Grain: Fine})
	// Collect mean-of-means per fine type, grouped by coarse prefix; any
	// refined coarse type must have fine subtypes with different scales.
	byFine := make(map[string][]float64)
	for _, c := range ds.Columns {
		m, _ := stats.Mean(c.Values)
		byFine[c.Type] = append(byFine[c.Type], m)
	}
	// Find two fine types sharing a coarse stem prefix and compare scales.
	found := false
	for fine := range byFine {
		for other := range byFine {
			if fine >= other {
				continue
			}
			if sharePrefix(fine, other) {
				m1 := meanOf(byFine[fine])
				m2 := meanOf(byFine[other])
				if m1 != 0 && m2 != 0 && (m1/m2 > 1.3 || m2/m1 > 1.3) {
					found = true
				}
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Error("no pair of sibling fine types with clearly different scales found")
	}
}

func sharePrefix(a, b string) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	// Require a long shared prefix including at least one underscore.
	common := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			break
		}
		common++
	}
	return common >= 8
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}

func TestFigure1Columns(t *testing.T) {
	cols := Figure1Columns(1)
	if len(cols) != 4 {
		t.Fatalf("got %d columns, want 4", len(cols))
	}
	means := make(map[string]float64)
	for _, c := range cols {
		m, err := stats.Mean(c.Values)
		if err != nil {
			t.Fatal(err)
		}
		means[c.Type] = m
	}
	if math.Abs(means["age"]-means["rank"]) > 5 {
		t.Errorf("Age (%.1f) and Rank (%.1f) should overlap near 30", means["age"], means["rank"])
	}
	if math.Abs(means["test_score"]-means["temperature"]) > 6 {
		t.Errorf("Test Score (%.1f) and Temperature (%.1f) should overlap near 75",
			means["test_score"], means["temperature"])
	}
}

func TestScalabilityDataset(t *testing.T) {
	ds := ScalabilityDataset(137, 9)
	if len(ds.Columns) != 137 {
		t.Errorf("columns = %d, want 137", len(ds.Columns))
	}
	if err := ds.Validate(); err != nil {
		t.Error(err)
	}
	tiny := ScalabilityDataset(0, 9)
	if len(tiny.Columns) != 1 {
		t.Errorf("clamped columns = %d, want 1", len(tiny.Columns))
	}
}

func TestDescribe(t *testing.T) {
	ds := GitTables(Config{Seed: 10, Scale: 0.1})
	s := Describe(ds)
	if s.Name != "GitTables" || s.Columns != len(ds.Columns) || s.Types != 19 {
		t.Errorf("Describe = %+v", s)
	}
	if s.TotalCells != ds.TotalValues() {
		t.Errorf("TotalCells = %d, want %d", s.TotalCells, ds.TotalValues())
	}
}

func TestValueGensProduceFiniteValues(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gens := map[string]ValueGen{
		"normal":     normalGen(10, 3, 0.1, 0.1, 1, 0, 100),
		"uniform":    uniformGen(0, 10, 0.05, 0),
		"lognormal":  lognormalGen(2, 1, 0.2, 2),
		"gamma":      gammaGen(2, 0.1, 0.2, 1),
		"betaScaled": betaScaledGen(2, 5, 100, 0.2, 1),
		"discrete":   discreteGen([]float64{1, 2, 3}, 0.5),
		"mixture":    mixtureGen(normalGen(0, 1, 0, 0, -1, unbounded, unbounded), normalGen(10, 1, 0, 0, -1, unbounded, unbounded)),
		"shifted":    shiftScaleGen(uniformGen(0, 1, 0, -1), 5, 2, 3),
	}
	for name, g := range gens {
		for trial := 0; trial < 5; trial++ {
			vals := g(rng, 100)
			if len(vals) != 100 {
				t.Errorf("%s produced %d values, want 100", name, len(vals))
			}
			for _, v := range vals {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s produced non-finite value %v", name, v)
				}
			}
		}
	}
}

func TestDiscreteGenRepetitive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := discreteGen([]float64{1, 2, 3, 4, 5}, 0.3)
	vals := g(rng, 500)
	uniq := stats.UniqueCount(vals)
	if uniq > 5 {
		t.Errorf("discrete column has %d unique values, want <= 5", uniq)
	}
}

func TestShiftScaleGen(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := uniformGen(0, 1, 0, -1)
	shifted := shiftScaleGen(base, 10, 2, -1)
	vals := shifted(rng, 200)
	for _, v := range vals {
		if v < 10 || v > 12 {
			t.Fatalf("shifted value %v outside [10, 12]", v)
		}
	}
}

func TestRotateHeader(t *testing.T) {
	pool := []string{"a", "b"}
	if h := rotateHeader(pool, 0); h != "a" {
		t.Errorf("rotateHeader(0) = %q", h)
	}
	if h := rotateHeader(pool, 1); h != "b" {
		t.Errorf("rotateHeader(1) = %q", h)
	}
	if h := rotateHeader(pool, 2); h != "a_1" {
		t.Errorf("rotateHeader(2) = %q", h)
	}
	if h := rotateHeader(pool, 5); h != "b_2" {
		t.Errorf("rotateHeader(5) = %q", h)
	}
}
