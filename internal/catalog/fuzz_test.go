package catalog

import (
	"bytes"
	"testing"
)

// FuzzReplayJournal feeds arbitrary bytes to the journal replay path. The
// contract under test is "corrupt input errors (or is reported as a torn
// tail), never panics": a corrupt header, an implausible record length or
// a checksum mismatch must fail with ErrFormat, a record cut short by the
// end of the stream must be reported as torn with a good-length no larger
// than the input, and nothing may panic.
func FuzzReplayJournal(f *testing.F) {
	// Seed with structurally valid journals: header only, adds, removes,
	// and a torn tail.
	hdr := appendJournalHeader(nil, 3, "fingerprint-abc")
	f.Add(hdr)
	full := append([]byte(nil), hdr...)
	full = appendRecord(full, Op{Kind: OpAdd, Entry: Entry{Key: key(1), Name: "price", Vec: []float64{1.5, -2, 0}}})
	full = appendRecord(full, Op{Kind: OpRemove, Entry: Entry{Key: key(1)}})
	full = appendRecord(full, Op{Kind: OpAdd, Entry: Entry{Key: key(2), Name: "qty", Vec: []float64{7, 8, 9}, Seq: 12}})
	f.Add(full)
	f.Add(full[:len(full)-5])
	f.Add([]byte{})
	f.Add([]byte("gemjnl\x00\x01"))
	f.Add([]byte("gemjnl\x00\x02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ops, _, _, goodLen, torn, _, err := replayJournal(bytes.NewReader(data))
		if err != nil {
			return
		}
		if goodLen < 0 || goodLen > int64(len(data)) {
			t.Fatalf("goodLen %d outside [0, %d]", goodLen, len(data))
		}
		if torn && goodLen == int64(len(data)) {
			t.Fatal("torn tail reported but goodLen covers the whole input")
		}
		// Every decoded op must be internally consistent: adds carry a
		// finite vector, removes carry nothing but a key.
		for i, op := range ops {
			switch op.Kind {
			case OpAdd:
				if len(op.Entry.Vec) == 0 {
					t.Fatalf("op %d: add without vector", i)
				}
			case OpRemove:
				if op.Entry.Vec != nil || op.Entry.Name != "" {
					t.Fatalf("op %d: remove with payload", i)
				}
			default:
				t.Fatalf("op %d: kind %d escaped decoding", i, op.Kind)
			}
		}
		// A replayable journal must round-trip: re-encoding the decoded ops
		// after the same header yields a stream that replays to the same
		// ops.
		re := appendJournalHeader(nil, 0, "")
		for _, op := range ops {
			re = appendRecord(re, op)
		}
		ops2, _, _, _, torn2, _, err := replayJournal(bytes.NewReader(re))
		if err != nil || torn2 {
			t.Fatalf("re-encoded journal failed to replay: torn=%v err=%v", torn2, err)
		}
		if len(ops2) != len(ops) {
			t.Fatalf("re-encoded journal has %d ops, want %d", len(ops2), len(ops))
		}
	})
}
