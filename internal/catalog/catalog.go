// Package catalog owns the column lifecycle of a Gem deployment: where
// columns come from (the ingest layer) and how their embeddings persist
// across restarts (the versioned store).
//
// The ingest layer is one Source interface with file, directory-glob,
// reader, synthetic and in-memory implementations, plus a Spec resolver for
// the flag convention every CLI shares (-in/-fit file-or-glob, -synthetic
// N). Before this package each CLI re-implemented that dispatch; now they
// all delegate here.
//
// The store is a snapshot file plus an append-only journal of add/remove
// records keyed by content hash. Mutations go to the journal; compaction
// folds the journal into a fresh snapshot. Replay is crash-safe: a torn
// final record (a process killed mid-append) is truncated away on the next
// open, while any other corruption — bad magic, mismatched checksum, an
// implausible length — is an error, never a panic. A generation number
// shared by snapshot and journal makes compaction itself crash-safe: if
// the process dies between the snapshot rename and the journal reset, the
// stale journal (older generation) is discarded on the next open instead
// of being double-applied.
//
// The store deliberately records raw (un-normalized) embedding rows and
// the exact order of operations. Both matter downstream: internal/serve
// normalizes per index metric at feed time, and replaying the same op
// sequence into internal/ann's deterministic mutable index reconstructs a
// byte-identical graph — which is what makes a restarted server answer
// /search exactly like the one that wrote the journal.
//
//gem:deterministic
package catalog

import (
	"encoding/hex"
	"errors"
)

// ErrInput is returned for malformed specs, sources and store operations.
var ErrInput = errors.New("catalog: invalid input")

// ErrFormat is returned when persisted store bytes cannot be decoded.
var ErrFormat = errors.New("catalog: invalid store data")

// Key content-addresses one column embedding: SHA-256 over the embedder
// fingerprint and the column inputs the embedding depends on. The serve
// layer computes it; the store only requires that equal content means
// equal key.
type Key [32]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return Key{}, errors.Join(ErrInput, errors.New("catalog: key must be 64 hex chars"))
	}
	copy(k[:], b)
	return k, nil
}

// Entry is one live column of the catalog: its content key, header name
// and raw embedding row.
//
// Seq is an opaque, caller-assigned sequence number persisted with the
// entry (format v2). The store itself orders replay by arrival, not by
// Seq; the sharded catalog uses Seq to reconstruct the global add order
// across its per-shard stores after a restart. Entries written by the v1
// format decode with Seq 0.
type Entry struct {
	Key  Key
	Name string
	Vec  []float64
	Seq  uint64
}

// OpKind discriminates journal operations.
type OpKind uint8

const (
	// OpAdd introduces a column (Entry fully populated).
	OpAdd OpKind = 1
	// OpRemove retires a column (only Entry.Key is meaningful).
	OpRemove OpKind = 2
)

// Op is one journal record: a column joining or leaving the catalog.
type Op struct {
	Kind  OpKind
	Entry Entry
}
