package catalog

// The ingest layer: one Source interface behind every way a catalog of
// columns enters the system. cmd/gemembed, cmd/gemsearch, cmd/gemserve and
// cmd/gembench all resolve their flags through Spec instead of carrying
// private copies of the CSV/synthetic dispatch.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/table"
)

// Source yields a catalog of numeric columns.
type Source interface {
	// Name describes the source (used in errors and as the Dataset name).
	Name() string
	// Load materializes the catalog. Implementations validate shape: a
	// successful load has at least one numeric column.
	Load() (*table.Dataset, error)
}

// File reads one CSV file in the gemembed format (header row, optional
// "#type:" ground-truth row, data rows).
func File(path string) Source { return fileSource(path) }

type fileSource string

func (f fileSource) Name() string { return string(f) }

func (f fileSource) Load() (*table.Dataset, error) {
	fh, err := os.Open(string(f))
	if err != nil {
		return nil, fmt.Errorf("catalog: opening %s: %w", f, err)
	}
	defer fh.Close()
	return table.ReadCSV(fh, string(f))
}

// Glob reads every CSV matched by a glob pattern (or every *.csv file of a
// directory) and merges their numeric columns into one dataset, in sorted
// path order so the catalog is independent of directory enumeration order.
func Glob(pattern string) Source { return globSource(pattern) }

type globSource string

func (g globSource) Name() string { return string(g) }

func (g globSource) Load() (*table.Dataset, error) {
	pattern := string(g)
	if st, err := os.Stat(pattern); err == nil && st.IsDir() {
		pattern = filepath.Join(pattern, "*.csv")
	}
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, fmt.Errorf("%w: bad glob %q: %v", ErrInput, pattern, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("%w: glob %q matches no files", ErrInput, pattern)
	}
	sort.Strings(paths)
	merged := &table.Dataset{Name: string(g)}
	for _, p := range paths {
		ds, err := File(p).Load()
		if err != nil {
			return nil, err
		}
		merged.Columns = append(merged.Columns, ds.Columns...)
	}
	return merged, nil
}

// Reader parses one CSV stream (e.g. stdin) in the gemembed format.
func Reader(r io.Reader, name string) Source { return readerSource{r: r, name: name} }

type readerSource struct {
	r    io.Reader
	name string
}

func (s readerSource) Name() string { return s.name }

func (s readerSource) Load() (*table.Dataset, error) { return table.ReadCSV(s.r, s.name) }

// Synthetic generates an n-column synthetic catalog, deterministic in
// (n, seed) — the corpus every CLI's -synthetic flag produces.
func Synthetic(n int, seed int64) Source { return syntheticSource{n: n, seed: seed} }

type syntheticSource struct {
	n    int
	seed int64
}

func (s syntheticSource) Name() string { return fmt.Sprintf("synthetic-%d", s.n) }

func (s syntheticSource) Load() (*table.Dataset, error) {
	if s.n <= 0 {
		return nil, fmt.Errorf("%w: synthetic catalog needs n > 0, got %d", ErrInput, s.n)
	}
	return data.ScalabilityDataset(s.n, s.seed), nil
}

// Memory wraps an already-materialized dataset.
func Memory(ds *table.Dataset) Source { return memorySource{ds} }

type memorySource struct{ ds *table.Dataset }

func (s memorySource) Name() string {
	if s.ds == nil {
		return "memory"
	}
	return s.ds.Name
}

func (s memorySource) Load() (*table.Dataset, error) {
	if s.ds == nil {
		return nil, fmt.Errorf("%w: nil in-memory dataset", ErrInput)
	}
	return s.ds, nil
}

// Spec is the shared CLI flag convention: a path flag (file, directory or
// glob), a -synthetic count, and optionally a fallback stream for commands
// that read stdin when no path is given.
type Spec struct {
	// Path is the -in/-fit value: a CSV file, a directory (its *.csv
	// files), or a glob pattern.
	Path string
	// Synthetic is the -synthetic/-fit-synthetic column count.
	Synthetic int
	// Seed drives synthetic generation.
	Seed int64
	// Stdin, when non-nil, is used if neither Path nor Synthetic is set.
	Stdin io.Reader
	// StdinName names the Stdin source (default "stdin").
	StdinName string
}

// Source resolves the spec to exactly one source, enforcing the mutual
// exclusions the CLIs used to hand-roll.
func (s Spec) Source() (Source, error) {
	switch {
	case s.Path != "" && s.Synthetic > 0:
		return nil, fmt.Errorf("%w: a file/glob path and a synthetic catalog are mutually exclusive", ErrInput)
	case s.Path != "":
		// An existing literal path wins over glob interpretation, so a
		// file literally named "data[1].csv" keeps opening directly the
		// way it always did; only paths that do NOT exist as-is are
		// treated as patterns.
		if st, err := os.Stat(s.Path); err == nil {
			if st.IsDir() {
				return Glob(s.Path), nil
			}
			return File(s.Path), nil
		}
		if strings.ContainsAny(s.Path, "*?[") {
			return Glob(s.Path), nil
		}
		return File(s.Path), nil
	case s.Synthetic > 0:
		return Synthetic(s.Synthetic, s.Seed), nil
	case s.Stdin != nil:
		name := s.StdinName
		if name == "" {
			name = "stdin"
		}
		return Reader(s.Stdin, name), nil
	default:
		return nil, fmt.Errorf("%w: need a catalog: a CSV path/glob or a synthetic column count", ErrInput)
	}
}
