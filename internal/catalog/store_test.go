package catalog

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// key derives a distinct Key from a byte.
func key(b byte) Key {
	var k Key
	k[0] = b
	k[31] = ^b
	return k
}

// ent builds a small entry.
func ent(b byte, name string, vals ...float64) Entry {
	return Entry{Key: key(b), Name: name, Vec: vals}
}

// mustAppend journals an op or fails the test.
func mustAppend(t *testing.T, s *Store, op Op) {
	t.Helper()
	if err := s.Append(op); err != nil {
		t.Fatal(err)
	}
}

func add(e Entry) Op  { return Op{Kind: OpAdd, Entry: e} }
func remove(k Key) Op { return Op{Kind: OpRemove, Entry: Entry{Key: k}} }

func TestStoreAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, add(ent(1, "price", 1, 2)))
	mustAppend(t, s, add(ent(2, "qty", 3, 4)))
	mustAppend(t, s, remove(key(1)))
	mustAppend(t, s, add(ent(3, "score", 5, 6)))
	if s.Len() != 2 || s.Dim() != 2 {
		t.Fatalf("len %d dim %d", s.Len(), s.Dim())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same ops, same live view, same order.
	r, err := Open(dir, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := len(r.Ops()); got != 4 {
		t.Fatalf("replayed %d ops, want 4", got)
	}
	live := r.Live()
	if len(live) != 2 || live[0].Name != "qty" || live[1].Name != "score" {
		t.Fatalf("live after replay: %+v", live)
	}
	if live[0].Vec[0] != 3 || live[1].Vec[1] != 6 {
		t.Fatalf("live vectors after replay: %+v", live)
	}
}

func TestStoreValidation(t *testing.T) {
	s, err := Open(t.TempDir(), "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustAppend(t, s, add(ent(1, "a", 1, 2)))
	for name, op := range map[string]Op{
		"duplicate-add":  add(ent(1, "a2", 9, 9)),
		"dim-mismatch":   add(ent(2, "b", 1, 2, 3)),
		"empty-vector":   add(ent(3, "c")),
		"remove-missing": remove(key(9)),
		"non-finite":     {Kind: OpAdd, Entry: Entry{Key: key(4), Name: "d", Vec: []float64{1, inf()}}},
		"unknown-kind":   {Kind: 9, Entry: ent(5, "e", 1, 2)},
	} {
		if err := s.Append(op); !errors.Is(err, ErrInput) {
			t.Errorf("%s: want ErrInput, got %v", name, err)
		}
	}
	// A failed append must not corrupt state: the original entry is intact
	// and a legal append still works.
	if s.Len() != 1 {
		t.Fatalf("len %d after rejected appends", s.Len())
	}
	mustAppend(t, s, add(ent(6, "f", 7, 8)))
	// Re-adding a removed key is legal (a column rejoining the catalog).
	mustAppend(t, s, remove(key(1)))
	mustAppend(t, s, add(ent(1, "a-again", 5, 5)))
	live := s.Live()
	if len(live) != 2 || live[0].Name != "f" || live[1].Name != "a-again" {
		t.Fatalf("re-add order: %+v", live)
	}
}

func inf() float64 { return math.Inf(1) }

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	for b := byte(1); b <= 6; b++ {
		mustAppend(t, s, add(ent(b, string('a'+rune(b)), float64(b), 0)))
	}
	mustAppend(t, s, remove(key(2)))
	mustAppend(t, s, remove(key(5)))
	wantLive := s.Live()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if len(s.Ops()) != 0 {
		t.Fatalf("%d ops after compaction", len(s.Ops()))
	}
	if got := s.Live(); len(got) != len(wantLive) {
		t.Fatalf("live %d after compaction, want %d", len(got), len(wantLive))
	}
	for i, e := range s.Live() {
		if e.Key != wantLive[i].Key || e.Name != wantLive[i].Name {
			t.Fatalf("entry %d reordered by compaction: %+v vs %+v", i, e, wantLive[i])
		}
	}
	// Mutations keep working after compaction and survive a reopen.
	mustAppend(t, s, add(ent(7, "late", 7, 0)))
	mustAppend(t, s, remove(key(1)))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.Snapshot()) != 4 || len(r.Ops()) != 2 {
		t.Fatalf("reopened snapshot %d ops %d, want 4/2", len(r.Snapshot()), len(r.Ops()))
	}
	live := r.Live()
	if len(live) != 4 || live[len(live)-1].Name != "late" {
		t.Fatalf("reopened live: %+v", live)
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, add(ent(1, "a", 1, 2)))
	mustAppend(t, s, add(ent(2, "b", 3, 4)))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: cut into the final record.
	jnl := filepath.Join(dir, journalFile)
	st, err := os.Stat(jnl)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jnl, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, "fp")
	if err != nil {
		t.Fatalf("open after torn tail: %v", err)
	}
	if r.Len() != 1 || r.Live()[0].Name != "a" {
		t.Fatalf("live after torn tail: %+v", r.Live())
	}
	// The tail was truncated away, so appending again produces a journal
	// that replays cleanly.
	mustAppend(t, r, add(ent(3, "c", 5, 6)))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	rr, err := Open(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	if rr.Len() != 2 {
		t.Fatalf("len %d after recovery append", rr.Len())
	}
}

func TestStoreCorruptionErrors(t *testing.T) {
	mk := func(t *testing.T) string {
		dir := t.TempDir()
		s, err := Open(dir, "fp")
		if err != nil {
			t.Fatal(err)
		}
		mustAppend(t, s, add(ent(1, "a", 1, 2)))
		mustAppend(t, s, add(ent(2, "b", 3, 4)))
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		mustAppend(t, s, add(ent(3, "c", 5, 6)))
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("journal-bit-flip", func(t *testing.T) {
		dir := mk(t)
		jnl := filepath.Join(dir, journalFile)
		raw, err := os.ReadFile(jnl)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-10] ^= 0xFF // inside the record payload → CRC mismatch
		if err := os.WriteFile(jnl, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, "fp"); !errors.Is(err, ErrFormat) {
			t.Fatalf("want ErrFormat, got %v", err)
		}
	})
	t.Run("journal-bad-magic", func(t *testing.T) {
		dir := mk(t)
		jnl := filepath.Join(dir, journalFile)
		raw, _ := os.ReadFile(jnl)
		raw[0] = 'X'
		os.WriteFile(jnl, raw, 0o644)
		if _, err := Open(dir, "fp"); !errors.Is(err, ErrFormat) {
			t.Fatalf("want ErrFormat, got %v", err)
		}
	})
	t.Run("snapshot-bit-flip", func(t *testing.T) {
		dir := mk(t)
		snap := filepath.Join(dir, snapshotFile)
		raw, _ := os.ReadFile(snap)
		raw[len(raw)/2] ^= 0xFF
		os.WriteFile(snap, raw, 0o644)
		if _, err := Open(dir, "fp"); !errors.Is(err, ErrFormat) {
			t.Fatalf("want ErrFormat, got %v", err)
		}
	})
	t.Run("snapshot-truncated", func(t *testing.T) {
		dir := mk(t)
		snap := filepath.Join(dir, snapshotFile)
		raw, _ := os.ReadFile(snap)
		os.WriteFile(snap, raw[:len(raw)/2], 0o644)
		if _, err := Open(dir, "fp"); !errors.Is(err, ErrFormat) {
			t.Fatalf("want ErrFormat, got %v", err)
		}
	})
}

// TestStoreStaleJournalDiscarded simulates a crash between the snapshot
// rename and the journal reset of a compaction: the journal carries an
// older generation and must be discarded, not double-applied.
func TestStoreStaleJournalDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, add(ent(1, "a", 1, 2)))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Save the generation-0 journal, compact (gen 1), then restore the old
	// journal over the reset one.
	oldJnl, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, journalFile), oldJnl, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, "fp")
	if err != nil {
		t.Fatalf("open with stale journal: %v", err)
	}
	defer r.Close()
	// The add is present exactly once (from the snapshot); the stale
	// journal was not replayed on top of it.
	if r.Len() != 1 || len(r.Ops()) != 0 {
		t.Fatalf("len %d, ops %d after stale-journal open", r.Len(), len(r.Ops()))
	}
}

func TestStoreFingerprintBinding(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "fp-A")
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, add(ent(1, "a", 1, 2)))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "fp-B"); !errors.Is(err, ErrInput) {
		t.Fatalf("mismatched fingerprint: %v", err)
	}
	// Empty fingerprint adopts the recorded one.
	r, err := Open(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Fingerprint() != "fp-A" {
		t.Fatalf("adopted fingerprint %q", r.Fingerprint())
	}
}

func TestStoreRead(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, add(ent(1, "a", 1, 2)))
	mustAppend(t, s, add(ent(2, "b", 3, 4)))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, remove(key(1)))
	mustAppend(t, s, add(ent(3, "c", 5, 6)))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fp, live, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fp != "fp" || len(live) != 2 || live[0].Name != "b" || live[1].Name != "c" {
		t.Fatalf("read: fp %q live %+v", fp, live)
	}
	// Read on a missing directory yields an empty catalog, not an error:
	// there is simply nothing recorded yet.
	fp, live, err = Read(filepath.Join(dir, "nope"))
	if err != nil || fp != "" || len(live) != 0 {
		t.Fatalf("read of missing dir: %q %v %v", fp, live, err)
	}
}

func TestStoreClosedRejectsMutations(t *testing.T) {
	s, err := Open(t.TempDir(), "fp")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(add(ent(1, "a", 1))); !errors.Is(err, ErrInput) {
		t.Fatalf("append after close: %v", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrInput) {
		t.Fatalf("compact after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestStoreLockExcludesSecondOpen: a second Open of the same directory
// fails while the first store is open, and succeeds after Close.
func TestStoreLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "fp"); !errors.Is(err, ErrInput) {
		t.Fatalf("second open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, "fp")
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	r.Close()
}

// TestStoreAppendFailureQuarantined: a failed journal write must not let
// later appends land after torn bytes. Simulated by closing the journal
// handle out from under the store.
func TestStoreAppendFailureQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, add(ent(1, "a", 1, 2)))
	s.jf.Close() // simulate the handle going bad (write and truncate fail)
	if err := s.Append(add(ent(2, "b", 3, 4))); err == nil {
		t.Fatal("append on a dead handle must fail")
	}
	if !s.broken {
		t.Fatal("store not marked broken after truncate failure")
	}
	if err := s.Append(add(ent(3, "c", 5, 6))); !errors.Is(err, ErrInput) {
		t.Fatalf("append on broken store: %v", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrInput) {
		t.Fatalf("compact on broken store: %v", err)
	}
	// The on-disk journal still replays cleanly to the pre-failure state.
	releaseLock(s.lock)
	_, live, err := Read(dir)
	if err != nil || len(live) != 1 || live[0].Name != "a" {
		t.Fatalf("read after quarantine: %v %+v", err, live)
	}
}
