package catalog

// The append-only journal. Layout, little-endian:
//
//	magic       [8]byte  "gemjnl\x00\x02" (v1 "gemjnl\x00\x01" still reads)
//	generation  uint64   must match the snapshot's generation
//	fpLen       uint32   followed by the embedder fingerprint bytes
//	records...
//
// One record:
//
//	payloadLen  uint32
//	payload     payloadLen bytes
//	crc         uint32    IEEE CRC-32 of the payload
//
// Payload (v2):
//
//	kind   uint8   1 = add, 2 = remove
//	key    [32]byte
//	add only:
//	  seq uint64, nameLen uint32, name, dim uint32, dim float64s (raw bits)
//
// v1 add payloads lack the seq field and decode with Seq 0. New journals
// are always written at v2; Open upgrades an intact v1 journal in place
// (re-encoded via the same atomic temp+rename as a journal reset).
//
// Replay distinguishes a torn tail from corruption. A record cut short by
// the end of the stream is how a crash mid-append looks, so it is reported
// (and the store truncates it away); anything else — an implausible
// length, a checksum mismatch, a malformed payload — fails with ErrFormat.
// Replay never panics on arbitrary bytes; FuzzReplayJournal pins that.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

var (
	journalMagicV1 = [8]byte{'g', 'e', 'm', 'j', 'n', 'l', 0, 1}
	journalMagic   = [8]byte{'g', 'e', 'm', 'j', 'n', 'l', 0, 2}
)

const (
	// maxJournalName bounds a column name read from journal bytes.
	maxJournalName = 1 << 16
	// maxJournalDim bounds an embedding dimensionality read from journal
	// bytes.
	maxJournalDim = 1 << 20
	// maxJournalPayload bounds one record payload: kind + key + seq + name
	// and vector sections at their own caps.
	maxJournalPayload = 1 + 32 + 8 + 4 + maxJournalName + 4 + 8*maxJournalDim
)

// appendJournalHeader encodes the journal file header.
func appendJournalHeader(buf []byte, generation uint64, fingerprint string) []byte {
	buf = append(buf, journalMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, generation)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fingerprint)))
	return append(buf, fingerprint...)
}

// appendRecord encodes one framed journal record (always at the current
// format version).
func appendRecord(buf []byte, op Op) []byte {
	payload := make([]byte, 0, 64+8*len(op.Entry.Vec))
	payload = append(payload, byte(op.Kind))
	payload = append(payload, op.Entry.Key[:]...)
	if op.Kind == OpAdd {
		payload = binary.LittleEndian.AppendUint64(payload, op.Entry.Seq)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(op.Entry.Name)))
		payload = append(payload, op.Entry.Name...)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(op.Entry.Vec)))
		for _, v := range op.Entry.Vec {
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(v))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
}

// decodePayload parses one record payload into an Op. version is the
// journal's format version: v2 add records carry a seq field, v1 records
// do not (Seq decodes as 0).
func decodePayload(p []byte, version int) (Op, error) {
	if len(p) < 1+32 {
		return Op{}, fmt.Errorf("%w: journal payload of %d bytes", ErrFormat, len(p))
	}
	var op Op
	op.Kind = OpKind(p[0])
	copy(op.Entry.Key[:], p[1:33])
	rest := p[33:]
	switch op.Kind {
	case OpRemove:
		if len(rest) != 0 {
			return Op{}, fmt.Errorf("%w: remove record with %d trailing bytes", ErrFormat, len(rest))
		}
		return op, nil
	case OpAdd:
		if version >= 2 {
			if len(rest) < 8 {
				return Op{}, fmt.Errorf("%w: add record truncated before seq", ErrFormat)
			}
			op.Entry.Seq = binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
		}
		if len(rest) < 4 {
			return Op{}, fmt.Errorf("%w: add record truncated before name", ErrFormat)
		}
		nameLen := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if nameLen > maxJournalName || int(nameLen) > len(rest) {
			return Op{}, fmt.Errorf("%w: add record name length %d", ErrFormat, nameLen)
		}
		op.Entry.Name = string(rest[:nameLen])
		rest = rest[nameLen:]
		if len(rest) < 4 {
			return Op{}, fmt.Errorf("%w: add record truncated before vector", ErrFormat)
		}
		dim := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if dim == 0 || dim > maxJournalDim || len(rest) != 8*int(dim) {
			return Op{}, fmt.Errorf("%w: add record vector length %d (have %d bytes)", ErrFormat, dim, len(rest))
		}
		op.Entry.Vec = make([]float64, dim)
		for i := range op.Entry.Vec {
			v := math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return Op{}, fmt.Errorf("%w: add record component %d is not finite", ErrFormat, i)
			}
			op.Entry.Vec[i] = v
		}
		return op, nil
	default:
		return Op{}, fmt.Errorf("%w: unknown journal op kind %d", ErrFormat, op.Kind)
	}
}

// replayJournal reads a journal stream. It returns the decoded ops, the
// stream's generation and fingerprint, the byte offset of the end of the
// last intact record, whether a torn tail (truncated trailing record) was
// dropped, and the stream's format version. Corruption other than a torn
// tail is an error.
func replayJournal(r io.Reader) (ops []Op, generation uint64, fingerprint string, goodLen int64, torn bool, version int, err error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, 0, "", 0, false, 0, fmt.Errorf("%w: reading journal magic: %v", ErrFormat, err)
	}
	switch m {
	case journalMagicV1:
		version = 1
	case journalMagic:
		version = 2
	default:
		return nil, 0, "", 0, false, 0, fmt.Errorf("%w: bad journal magic %q", ErrFormat, m[:])
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, "", 0, false, 0, fmt.Errorf("%w: reading journal header: %v", ErrFormat, err)
	}
	generation = binary.LittleEndian.Uint64(hdr[:8])
	fpLen := binary.LittleEndian.Uint32(hdr[8:])
	if fpLen > maxJournalName {
		return nil, 0, "", 0, false, 0, fmt.Errorf("%w: journal fingerprint length %d", ErrFormat, fpLen)
	}
	fpBytes := make([]byte, fpLen)
	if _, err := io.ReadFull(br, fpBytes); err != nil {
		return nil, 0, "", 0, false, 0, fmt.Errorf("%w: reading journal fingerprint: %v", ErrFormat, err)
	}
	fingerprint = string(fpBytes)
	goodLen = int64(len(journalMagic)) + 12 + int64(fpLen)

	frame := make([]byte, 0, 256)
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			if err == io.EOF {
				return ops, generation, fingerprint, goodLen, false, version, nil
			}
			// A partial length prefix at the end of the stream is a torn
			// tail.
			return ops, generation, fingerprint, goodLen, true, version, nil
		}
		payloadLen := binary.LittleEndian.Uint32(lenBuf[:])
		if payloadLen > maxJournalPayload {
			return nil, 0, "", 0, false, 0, fmt.Errorf("%w: journal record length %d exceeds limit", ErrFormat, payloadLen)
		}
		if cap(frame) < int(payloadLen)+4 {
			frame = make([]byte, payloadLen+4)
		}
		frame = frame[:payloadLen+4]
		if _, err := io.ReadFull(br, frame); err != nil {
			// Payload or checksum cut short by the end of the stream: torn
			// tail.
			return ops, generation, fingerprint, goodLen, true, version, nil
		}
		payload := frame[:payloadLen]
		wantCRC := binary.LittleEndian.Uint32(frame[payloadLen:])
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return nil, 0, "", 0, false, 0, fmt.Errorf("%w: journal record checksum mismatch", ErrFormat)
		}
		op, err := decodePayload(payload, version)
		if err != nil {
			return nil, 0, "", 0, false, 0, err
		}
		ops = append(ops, op)
		goodLen += 4 + int64(payloadLen) + 4
	}
}
