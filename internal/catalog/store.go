package catalog

// The versioned on-disk embedding store: snapshot + journal in one
// directory.
//
// Snapshot layout ("snapshot.gemcat"), little-endian:
//
//	magic       [8]byte  "gemcat\x00\x02" (v1 "gemcat\x00\x01" still reads)
//	body        generation uint64, fpLen uint32 + fingerprint,
//	            dim uint32, count uint32,
//	            count × (key [32]byte, seq uint64 [v2 only],
//	                     nameLen uint32 + name, dim float64s)
//	crc         uint32   IEEE CRC-32 of the body
//
// The journal ("journal.gemcat", see journal.go) holds every mutation
// since the snapshot was written. Compact folds the live state into a new
// snapshot (written to a temp file, fsynced, renamed) at generation g+1
// and then resets the journal to generation g+1; a crash between those two
// steps leaves a stale journal whose lower generation makes the next Open
// discard it instead of double-applying it.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
)

var (
	snapshotMagicV1 = [8]byte{'g', 'e', 'm', 'c', 'a', 't', 0, 1}
	snapshotMagic   = [8]byte{'g', 'e', 'm', 'c', 'a', 't', 0, 2}
)

const (
	snapshotFile = "snapshot.gemcat"
	journalFile  = "journal.gemcat"
)

// Store is the durable, mutable catalog: live entries plus the op history
// since the last compaction. Safe for concurrent use within one process;
// a lock file makes a second process's Open fail loudly instead of
// interleaving journal appends.
type Store struct {
	mu  sync.Mutex
	dir string
	fp  string
	gen uint64
	dim int // 0 until the first entry fixes it

	snap []Entry
	ops  []Op
	jf   *os.File
	lock *os.File
	// jsize is the byte length of the intact journal prefix. A failed
	// append truncates back to it; if even the truncation fails the store
	// is marked broken so no later append can write after torn bytes.
	jsize  int64
	broken bool

	// live maps key → (sequence, entry) for the surviving add events; the
	// sequence numbers order Live() identically to the id order a replay
	// into an index produces.
	live    map[Key]liveRec
	nextSeq int
	closed  bool
}

type liveRec struct {
	seq int
	e   Entry
}

// loadedDir is the decoded on-disk state of a store directory, shared by
// Open and Read so the two cannot drift in how they reconcile snapshot
// and journal.
type loadedDir struct {
	fp      string
	gen     uint64 // snapshot generation (0 without a snapshot)
	dim     int
	snap    []Entry
	ops     []Op
	jnlSeen bool  // journal file exists
	jnlOK   bool  // journal matches the snapshot generation (ops valid)
	goodLen int64 // intact journal prefix length (when jnlOK)
	jnlLen  int64 // raw journal file length (when jnlSeen)
	jnlVer  int   // journal format version (when jnlOK)
}

// loadDir reads and reconciles a store directory's snapshot and journal.
// fingerprint is the caller's expected embedder binding ("" accepts any);
// mismatches between caller, snapshot and journal are errors. A stale
// journal (generation older than the snapshot — a crash between the
// compaction rename and the journal reset) is reported as !jnlOK, not
// replayed.
func loadDir(dir, fingerprint string) (*loadedDir, error) {
	ld := &loadedDir{fp: fingerprint}
	adopt := func(fp string) error {
		if fp == "" {
			return nil
		}
		if ld.fp == "" {
			ld.fp = fp
			return nil
		}
		if ld.fp != fp {
			return fmt.Errorf("%w: store belongs to embedder %.12s…, opened for %.12s… — was the model refitted? re-embed into a fresh store directory", ErrInput, fp, ld.fp)
		}
		return nil
	}

	snapPath := filepath.Join(dir, snapshotFile)
	if raw, err := os.ReadFile(snapPath); err == nil {
		gen, fp, dim, entries, err := decodeSnapshot(raw)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", snapPath, err)
		}
		if err := adopt(fp); err != nil {
			return nil, err
		}
		ld.gen, ld.dim, ld.snap = gen, dim, entries
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("catalog: reading snapshot: %w", err)
	}

	jnlPath := filepath.Join(dir, journalFile)
	if raw, err := os.ReadFile(jnlPath); err == nil {
		ld.jnlSeen = true
		ld.jnlLen = int64(len(raw))
		ops, gen, fp, goodLen, _, ver, err := replayJournal(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", jnlPath, err)
		}
		switch {
		case gen < ld.gen:
			// Stale journal from before the last compaction: everything in
			// it is already folded into the snapshot.
		case gen > ld.gen:
			return nil, fmt.Errorf("%w: journal generation %d ahead of snapshot %d", ErrFormat, gen, ld.gen)
		default:
			if err := adopt(fp); err != nil {
				return nil, err
			}
			ld.jnlOK = true
			ld.goodLen = goodLen
			ld.ops = ops
			ld.jnlVer = ver
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("catalog: reading journal: %w", err)
	}
	return ld, nil
}

// fold replays the loaded state into the store's live view, validating as
// a replay into an index would: snapshot entries are implicit adds.
func (s *Store) fold(ld *loadedDir) error {
	for _, e := range ld.snap {
		if err := s.applyLive(Op{Kind: OpAdd, Entry: e}); err != nil {
			return fmt.Errorf("%w: snapshot: %v", ErrFormat, err)
		}
	}
	for _, op := range ld.ops {
		if err := s.applyLive(op); err != nil {
			return fmt.Errorf("%w: journal replay: %v", ErrFormat, err)
		}
	}
	return nil
}

// Open opens (or creates) a store directory. fingerprint binds the store
// to one embedder: a non-empty value must match a non-empty recorded one,
// and is recorded on creation. A torn trailing journal record — the
// signature of a crash mid-append — is truncated away; any other
// corruption is an error. An exclusive lock file guards the directory: a
// second concurrent Open fails instead of interleaving appends (the lock
// is released by Close and by process exit).
func Open(dir, fingerprint string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: creating store dir: %w", err)
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	ld, err := loadDir(dir, fingerprint)
	if err != nil {
		releaseLock(lock)
		return nil, err
	}
	s := &Store{dir: dir, fp: ld.fp, gen: ld.gen, dim: ld.dim, snap: ld.snap,
		ops: ld.ops, lock: lock, live: make(map[Key]liveRec)}
	if s.fp == "" {
		s.fp = fingerprint
	}

	jnlPath := filepath.Join(dir, journalFile)
	switch {
	case !ld.jnlSeen || !ld.jnlOK:
		// Missing journal (fresh store) or stale one (pre-compaction
		// leftover): start a fresh journal at the snapshot generation.
		if err := writeJournalFile(jnlPath, ld.gen, s.fp); err != nil {
			releaseLock(lock)
			return nil, err
		}
		s.jsize = journalHeaderLen(s.fp)
	case ld.jnlVer < 2:
		// A previous-format journal: re-encode its intact ops at the
		// current version (atomic temp+rename, like a journal reset), so
		// appends never mix record formats in one file. A torn v1 tail is
		// dropped by the same rewrite.
		buf := appendJournalHeader(nil, ld.gen, s.fp)
		for _, op := range ld.ops {
			buf = appendRecord(buf, op)
		}
		if err := atomicWrite(jnlPath, buf); err != nil {
			releaseLock(lock)
			return nil, err
		}
		s.jsize = int64(len(buf))
	case ld.jnlLen > ld.goodLen:
		// Torn tail from a crash mid-append.
		if err := os.Truncate(jnlPath, ld.goodLen); err != nil {
			releaseLock(lock)
			return nil, fmt.Errorf("catalog: truncating torn journal tail: %w", err)
		}
		s.jsize = ld.goodLen
	default:
		s.jsize = ld.goodLen
	}

	if err := s.fold(ld); err != nil {
		releaseLock(lock)
		return nil, err
	}
	jf, err := os.OpenFile(jnlPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		releaseLock(lock)
		return nil, fmt.Errorf("catalog: opening journal for append: %w", err)
	}
	s.jf = jf
	return s, nil
}

// Read loads the live entries of a store directory without opening it for
// writing (nothing on disk is modified; a torn journal tail is simply
// skipped, a stale journal ignored). It returns the recorded fingerprint
// and the live entries in the order a replay into an index would assign
// ids.
func Read(dir string) (fingerprint string, live []Entry, err error) {
	ld, err := loadDir(dir, "")
	if err != nil {
		return "", nil, err
	}
	s := &Store{live: make(map[Key]liveRec)}
	if err := s.fold(ld); err != nil {
		return "", nil, err
	}
	return ld.fp, s.liveEntries(), nil
}

// applyLive validates one op against the live view and applies it. It is
// validate + the mutation, so Append-time rejection and replay-time
// rejection can never drift apart.
func (s *Store) applyLive(op Op) error {
	if err := s.validate(op); err != nil {
		return err
	}
	switch op.Kind {
	case OpAdd:
		if s.dim == 0 {
			s.dim = len(op.Entry.Vec)
		}
		s.live[op.Entry.Key] = liveRec{seq: s.nextSeq, e: op.Entry}
		s.nextSeq++
	case OpRemove:
		delete(s.live, op.Entry.Key)
	}
	return nil
}

// liveEntries returns the live entries ordered by add sequence.
func (s *Store) liveEntries() []Entry {
	recs := make([]liveRec, 0, len(s.live))
	for _, r := range s.live {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	out := make([]Entry, len(recs))
	for i, r := range recs {
		out[i] = r.e
	}
	return out
}

// Fingerprint returns the embedder fingerprint the store is bound to.
func (s *Store) Fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fp
}

// Dim returns the embedding dimensionality (0 while empty).
func (s *Store) Dim() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dim
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// Snapshot returns the entries of the last compaction, in id order.
// Callers must treat the result as immutable.
func (s *Store) Snapshot() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// Ops returns the journal operations since the last compaction, in append
// order. Callers must treat the result as immutable.
func (s *Store) Ops() []Op {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Live returns the live entries in the order a replay into an index
// assigns ids — which is also the order Compact writes them.
func (s *Store) Live() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveEntries()
}

// PendingOps reports the journal shape since the last compaction.
func (s *Store) PendingOps() (adds, removes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, op := range s.ops {
		if op.Kind == OpAdd {
			adds++
		} else {
			removes++
		}
	}
	return adds, removes
}

// Append validates one op, journals it and applies it to the live view.
// The journal write hits the file before Append returns, so the op
// survives a process crash; an OS crash may still tear the final record,
// which the next Open truncates away. A failed write is quarantined: the
// journal is truncated back to its last intact prefix, and if even that
// fails the store is marked broken — nothing may ever append after torn
// bytes, where the next Open could not tell a crash from corruption.
func (s *Store) Append(op Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: store is closed", ErrInput)
	}
	if s.broken {
		return fmt.Errorf("%w: store is broken after a failed journal write", ErrInput)
	}
	// Validate first so a rejected op mutates nothing on disk or in memory.
	if err := s.validate(op); err != nil {
		return fmt.Errorf("%w: %v", ErrInput, err)
	}
	rec := appendRecord(nil, op)
	if _, err := s.jf.Write(rec); err != nil {
		if terr := s.jf.Truncate(s.jsize); terr != nil {
			s.broken = true
			return fmt.Errorf("catalog: appending journal record: %w (and truncating the torn tail failed: %v — store disabled)", err, terr)
		}
		return fmt.Errorf("catalog: appending journal record: %w", err)
	}
	s.jsize += int64(len(rec))
	if err := s.applyLive(op); err != nil {
		return fmt.Errorf("%w: %v", ErrInput, err)
	}
	s.ops = append(s.ops, op)
	return nil
}

// validate checks one op against the live view without mutating state:
// structural limits (so the op can round-trip the journal encoding),
// finiteness, dimensionality, and key liveness.
func (s *Store) validate(op Op) error {
	switch op.Kind {
	case OpAdd:
		e := op.Entry
		if len(e.Vec) == 0 {
			return fmt.Errorf("add %q: empty vector", e.Name)
		}
		if len(e.Name) > maxJournalName {
			return fmt.Errorf("add: name of %d bytes exceeds limit", len(e.Name))
		}
		if len(e.Vec) > maxJournalDim {
			return fmt.Errorf("add %q: dim %d exceeds limit", e.Name, len(e.Vec))
		}
		for i, v := range e.Vec {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("add %q: component %d is not finite", e.Name, i)
			}
		}
		if s.dim != 0 && len(e.Vec) != s.dim {
			return fmt.Errorf("add %q: dim %d, store has %d", e.Name, len(e.Vec), s.dim)
		}
		if _, ok := s.live[e.Key]; ok {
			return fmt.Errorf("add %q: key %s already live", e.Name, e.Key)
		}
		return nil
	case OpRemove:
		if _, ok := s.live[op.Entry.Key]; !ok {
			return fmt.Errorf("remove: key %s not live", op.Entry.Key)
		}
		return nil
	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
}

// Compact folds the journal into a fresh snapshot at the next generation
// and resets the journal. The live entries keep their replay order, so an
// index rebuilt from the survivors lines up id-for-id with the compacted
// snapshot.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: store is closed", ErrInput)
	}
	if s.broken {
		return fmt.Errorf("%w: store is broken after a failed journal write", ErrInput)
	}
	live := s.liveEntries()
	newGen := s.gen + 1
	snapPath := filepath.Join(s.dir, snapshotFile)
	if err := atomicWrite(snapPath, encodeSnapshot(newGen, s.fp, s.dim, live)); err != nil {
		return err
	}
	// Reset the journal only after the snapshot rename: a crash in between
	// leaves a stale-generation journal that the next Open discards. The
	// reset itself is a temp-file + rename too, so a crash mid-reset
	// leaves either the stale journal or the fresh one — never a
	// truncated, unreadable file.
	if err := s.jf.Close(); err != nil {
		return fmt.Errorf("catalog: closing journal: %w", err)
	}
	jnlPath := filepath.Join(s.dir, journalFile)
	if err := writeJournalFile(jnlPath, newGen, s.fp); err != nil {
		return err
	}
	jf, err := os.OpenFile(jnlPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("catalog: reopening journal: %w", err)
	}
	s.jf = jf
	s.jsize = journalHeaderLen(s.fp)
	s.gen = newGen
	s.snap = live
	s.ops = nil
	// Re-sequence the live view to match the fresh snapshot order.
	s.live = make(map[Key]liveRec, len(live))
	s.nextSeq = 0
	for _, e := range live {
		s.live[e.Key] = liveRec{seq: s.nextSeq, e: e}
		s.nextSeq++
	}
	return nil
}

// Close flushes and closes the journal and releases the directory lock.
// The store rejects further mutations.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	defer releaseLock(s.lock)
	if err := s.jf.Sync(); err != nil {
		_ = s.jf.Close()
		return fmt.Errorf("catalog: syncing journal: %w", err)
	}
	if err := s.jf.Close(); err != nil {
		return fmt.Errorf("catalog: closing journal: %w", err)
	}
	return nil
}

// encodeSnapshot builds the snapshot file bytes.
func encodeSnapshot(generation uint64, fingerprint string, dim int, entries []Entry) []byte {
	body := make([]byte, 0, 64+len(entries)*(40+8*dim))
	body = binary.LittleEndian.AppendUint64(body, generation)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(fingerprint)))
	body = append(body, fingerprint...)
	body = binary.LittleEndian.AppendUint32(body, uint32(dim))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(entries)))
	for _, e := range entries {
		body = append(body, e.Key[:]...)
		body = binary.LittleEndian.AppendUint64(body, e.Seq)
		body = binary.LittleEndian.AppendUint32(body, uint32(len(e.Name)))
		body = append(body, e.Name...)
		for _, v := range e.Vec {
			body = binary.LittleEndian.AppendUint64(body, math.Float64bits(v))
		}
	}
	out := make([]byte, 0, len(snapshotMagic)+len(body)+4)
	out = append(out, snapshotMagic[:]...)
	out = append(out, body...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
}

// decodeSnapshot parses and validates snapshot file bytes.
func decodeSnapshot(raw []byte) (generation uint64, fingerprint string, dim int, entries []Entry, err error) {
	if len(raw) < len(snapshotMagic)+4 {
		return 0, "", 0, nil, fmt.Errorf("%w: snapshot of %d bytes", ErrFormat, len(raw))
	}
	version := 0
	switch {
	case bytes.Equal(raw[:len(snapshotMagic)], snapshotMagicV1[:]):
		version = 1
	case bytes.Equal(raw[:len(snapshotMagic)], snapshotMagic[:]):
		version = 2
	default:
		return 0, "", 0, nil, fmt.Errorf("%w: bad snapshot magic %q", ErrFormat, raw[:len(snapshotMagic)])
	}
	body := raw[len(snapshotMagic) : len(raw)-4]
	wantCRC := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return 0, "", 0, nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrFormat)
	}
	take := func(n int) ([]byte, error) {
		if len(body) < n {
			return nil, fmt.Errorf("%w: snapshot truncated", ErrFormat)
		}
		b := body[:n]
		body = body[n:]
		return b, nil
	}
	b, err := take(8 + 4)
	if err != nil {
		return 0, "", 0, nil, err
	}
	generation = binary.LittleEndian.Uint64(b)
	fpLen := binary.LittleEndian.Uint32(b[8:])
	if fpLen > maxJournalName {
		return 0, "", 0, nil, fmt.Errorf("%w: snapshot fingerprint length %d", ErrFormat, fpLen)
	}
	if b, err = take(int(fpLen)); err != nil {
		return 0, "", 0, nil, err
	}
	fingerprint = string(b)
	if b, err = take(4 + 4); err != nil {
		return 0, "", 0, nil, err
	}
	d := binary.LittleEndian.Uint32(b)
	count := binary.LittleEndian.Uint32(b[4:])
	if d > maxJournalDim {
		return 0, "", 0, nil, fmt.Errorf("%w: snapshot dim %d", ErrFormat, d)
	}
	if count > 0 && d == 0 {
		return 0, "", 0, nil, fmt.Errorf("%w: %d snapshot entries with dim 0", ErrFormat, count)
	}
	// Minimum bytes per entry: 32-byte key + (v2) 8-byte seq + 4-byte name
	// length + vector.
	entryMin := int64(36 + 8*d)
	if version >= 2 {
		entryMin += 8
	}
	if int64(count)*entryMin > int64(len(body)) {
		return 0, "", 0, nil, fmt.Errorf("%w: snapshot count %d exceeds payload", ErrFormat, count)
	}
	dim = int(d)
	entries = make([]Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		var e Entry
		if b, err = take(32); err != nil {
			return 0, "", 0, nil, err
		}
		copy(e.Key[:], b)
		if version >= 2 {
			if b, err = take(8); err != nil {
				return 0, "", 0, nil, err
			}
			e.Seq = binary.LittleEndian.Uint64(b)
		}
		if b, err = take(4); err != nil {
			return 0, "", 0, nil, err
		}
		nameLen := binary.LittleEndian.Uint32(b)
		if nameLen > maxJournalName {
			return 0, "", 0, nil, fmt.Errorf("%w: snapshot entry %d name length %d", ErrFormat, i, nameLen)
		}
		if b, err = take(int(nameLen)); err != nil {
			return 0, "", 0, nil, err
		}
		e.Name = string(b)
		if b, err = take(8 * dim); err != nil {
			return 0, "", 0, nil, err
		}
		e.Vec = make([]float64, dim)
		for j := range e.Vec {
			v := math.Float64frombits(binary.LittleEndian.Uint64(b[8*j:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, "", 0, nil, fmt.Errorf("%w: snapshot entry %d component %d is not finite", ErrFormat, i, j)
			}
			e.Vec[j] = v
		}
		entries = append(entries, e)
	}
	if len(body) != 0 {
		return 0, "", 0, nil, fmt.Errorf("%w: %d trailing snapshot bytes", ErrFormat, len(body))
	}
	return generation, fingerprint, dim, entries, nil
}

// journalHeaderLen is the byte length of the header writeJournalFile
// produces — the initial intact-prefix length of a fresh journal.
func journalHeaderLen(fingerprint string) int64 {
	return int64(len(journalMagic)) + 12 + int64(len(fingerprint))
}

// writeJournalFile atomically replaces path with a journal holding only
// the header: temp file + fsync + rename, so a crash mid-reset leaves
// either the old journal or the fresh one, never a truncated file.
func writeJournalFile(path string, generation uint64, fingerprint string) error {
	return atomicWrite(path, appendJournalHeader(nil, generation, fingerprint))
}

// acquireLock takes the store directory's exclusive advisory lock. The
// lock is released by releaseLock and automatically by process exit, so a
// crashed server never blocks a restart.
func acquireLock(dir string) (*os.File, error) {
	path := filepath.Join(dir, "lock")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("catalog: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: store %s is locked by another process (%v)", ErrInput, dir, err)
	}
	return f, nil
}

// releaseLock drops the advisory lock (nil-safe for read-only stores).
func releaseLock(f *os.File) {
	if f == nil {
		return
	}
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	_ = f.Close()
}

// atomicWrite writes data to a temp file in the target's directory, syncs
// it, renames it over the target and syncs the directory. The directory
// sync is what orders consecutive atomicWrites durably: Compact renames
// the snapshot before resetting the journal, and a power loss must never
// persist the journal reset without the snapshot it depends on.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("catalog: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("catalog: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("catalog: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("catalog: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("catalog: renaming %s: %w", path, err)
	}
	df, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("catalog: opening %s for sync: %w", dir, err)
	}
	serr := df.Sync()
	if cerr := df.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("catalog: syncing %s: %w", dir, serr)
	}
	return nil
}
