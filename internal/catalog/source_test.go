package catalog

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/table"
)

// writeCSV drops a small catalog CSV into dir and returns its path.
func writeCSV(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const csvA = "price,label\n#type:cost,\n9.99,x\n20,y\n35.5,z\n"
const csvB = "quantity\n5\n30\n25\n"

func TestFileSource(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "a.csv", csvA)
	ds, err := File(path).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Columns) != 1 || ds.Columns[0].Name != "price" || ds.Columns[0].Type != "cost" {
		t.Fatalf("unexpected columns: %+v", ds.Columns)
	}
	if _, err := File(filepath.Join(dir, "missing.csv")).Load(); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestGlobSourceMergesSorted(t *testing.T) {
	dir := t.TempDir()
	// Written out of sorted order on purpose: the merge must sort paths.
	writeCSV(t, dir, "b.csv", csvB)
	writeCSV(t, dir, "a.csv", csvA)

	for _, src := range []Source{Glob(filepath.Join(dir, "*.csv")), Glob(dir)} {
		ds, err := src.Load()
		if err != nil {
			t.Fatalf("%s: %v", src.Name(), err)
		}
		if len(ds.Columns) != 2 || ds.Columns[0].Name != "price" || ds.Columns[1].Name != "quantity" {
			t.Fatalf("%s: merged columns %+v", src.Name(), ds.Headers())
		}
		// Provenance survives the merge.
		if !strings.HasSuffix(ds.Columns[0].Table, "a.csv") || !strings.HasSuffix(ds.Columns[1].Table, "b.csv") {
			t.Fatalf("%s: tables %q, %q", src.Name(), ds.Columns[0].Table, ds.Columns[1].Table)
		}
	}
	if _, err := Glob(filepath.Join(dir, "*.tsv")).Load(); !errors.Is(err, ErrInput) {
		t.Fatalf("empty glob: %v", err)
	}
}

func TestSyntheticSourceDeterministic(t *testing.T) {
	a, err := Synthetic(30, 7).Load()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(30, 7).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Columns) != 30 || len(b.Columns) != 30 {
		t.Fatalf("column counts %d, %d", len(a.Columns), len(b.Columns))
	}
	for i := range a.Columns {
		if a.Columns[i].Name != b.Columns[i].Name {
			t.Fatalf("column %d: %q vs %q", i, a.Columns[i].Name, b.Columns[i].Name)
		}
		for j := range a.Columns[i].Values {
			if a.Columns[i].Values[j] != b.Columns[i].Values[j] {
				t.Fatalf("column %d value %d differs", i, j)
			}
		}
	}
	if _, err := Synthetic(0, 1).Load(); !errors.Is(err, ErrInput) {
		t.Fatalf("n=0: %v", err)
	}
}

func TestMemoryAndReaderSources(t *testing.T) {
	ds := &table.Dataset{Name: "mem", Columns: []table.Column{{Name: "c", Values: []float64{1, 2}}}}
	got, err := Memory(ds).Load()
	if err != nil || got != ds {
		t.Fatalf("memory source: %v %v", got, err)
	}
	if _, err := Memory(nil).Load(); !errors.Is(err, ErrInput) {
		t.Fatalf("nil memory: %v", err)
	}
	rds, err := Reader(strings.NewReader(csvA), "stream").Load()
	if err != nil || rds.Name != "stream" || len(rds.Columns) != 1 {
		t.Fatalf("reader source: %+v %v", rds, err)
	}
}

func TestSpecResolution(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "a.csv", csvA)

	cases := []struct {
		name    string
		spec    Spec
		wantErr bool
		check   func(t *testing.T, src Source)
	}{
		{name: "file", spec: Spec{Path: path}, check: func(t *testing.T, src Source) {
			if _, ok := src.(fileSource); !ok {
				t.Fatalf("got %T", src)
			}
		}},
		{name: "dir-as-glob", spec: Spec{Path: dir}, check: func(t *testing.T, src Source) {
			if _, ok := src.(globSource); !ok {
				t.Fatalf("got %T", src)
			}
		}},
		{name: "pattern-as-glob", spec: Spec{Path: filepath.Join(dir, "*.csv")}, check: func(t *testing.T, src Source) {
			if _, ok := src.(globSource); !ok {
				t.Fatalf("got %T", src)
			}
		}},
		{name: "synthetic", spec: Spec{Synthetic: 10, Seed: 3}, check: func(t *testing.T, src Source) {
			if _, ok := src.(syntheticSource); !ok {
				t.Fatalf("got %T", src)
			}
		}},
		{name: "stdin-fallback", spec: Spec{Stdin: strings.NewReader(csvA)}, check: func(t *testing.T, src Source) {
			if src.Name() != "stdin" {
				t.Fatalf("name %q", src.Name())
			}
		}},
		{name: "both", spec: Spec{Path: path, Synthetic: 5}, wantErr: true},
		{name: "neither", spec: Spec{}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, err := tc.spec.Source()
			if tc.wantErr {
				if !errors.Is(err, ErrInput) {
					t.Fatalf("want ErrInput, got %v", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, src)
			if _, err := src.Load(); err != nil {
				t.Fatalf("load: %v", err)
			}
		})
	}
}

// TestSpecLiteralPathBeatsGlob: a file literally named with glob
// metacharacters opens directly when it exists; only non-existent paths
// fall back to pattern interpretation.
func TestSpecLiteralPathBeatsGlob(t *testing.T) {
	dir := t.TempDir()
	weird := writeCSV(t, dir, "data[1].csv", csvA)
	writeCSV(t, dir, "data1.csv", csvB) // what the glob reading of [1] would match
	src, err := Spec{Path: weird}.Source()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Columns) != 1 || ds.Columns[0].Name != "price" {
		t.Fatalf("literal bracket file misrouted: %+v", ds.Headers())
	}
	// The same spelling with no literal file present IS a pattern.
	src, err = Spec{Path: filepath.Join(dir, "data[12].csv")}.Source()
	if err != nil {
		t.Fatal(err)
	}
	ds, err = src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Columns) != 1 || ds.Columns[0].Name != "quantity" {
		t.Fatalf("pattern fallback misrouted: %+v", ds.Headers())
	}
}
