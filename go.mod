module github.com/gem-embeddings/gem

go 1.22
