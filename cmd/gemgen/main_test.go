package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/table"
)

func TestGenerateKnownCorpora(t *testing.T) {
	cfg := data.Config{Seed: 1, Scale: 0.05}
	tests := []struct {
		name      string
		wantTypes int
	}{
		{"git", 19},
		{"sato", 12},
	}
	for _, tc := range tests {
		ds, err := generate(tc.name, cfg)
		if err != nil {
			t.Fatalf("generate(%q): %v", tc.name, err)
		}
		if ds.NumTypes() != tc.wantTypes {
			t.Errorf("%s types = %d, want %d", tc.name, ds.NumTypes(), tc.wantTypes)
		}
	}
	// Case-insensitive.
	if _, err := generate("GDS", cfg); err != nil {
		t.Errorf("generate(GDS): %v", err)
	}
	if _, err := generate("nope", cfg); err == nil {
		t.Error("unknown corpus should fail")
	}
}

func TestGeneratedCSVIsParsable(t *testing.T) {
	ds, err := generate("wdc", data.Config{Seed: 2, Scale: 0.03, Grain: data.Fine})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := table.ReadCSV(strings.NewReader(buf.String()), "wdc")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Columns) != len(ds.Columns) {
		t.Errorf("CSV round trip: %d columns, want %d", len(back.Columns), len(ds.Columns))
	}
	if back.Columns[0].Type == "" {
		t.Error("ground-truth labels lost in CSV round trip")
	}
}
