// Command gemgen generates the synthetic benchmark corpora (GDS-like,
// WDC-like, Sato-Tables-like, Git-Tables-like) as CSV files in the format
// gemembed consumes (header row, "#type:" ground-truth row, data rows).
//
// Usage:
//
//	gemgen -corpus gds -scale 0.5 -grain fine -out gds.csv
//	gemgen -corpus sato > sato.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/table"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemgen: ")

	var (
		corpus = flag.String("corpus", "gds", "corpus: gds|wdc|sato|git")
		seed   = flag.Int64("seed", 1, "random seed")
		scale  = flag.Float64("scale", 1.0, "corpus scale (1.0 = paper-sized)")
		grain  = flag.String("grain", "coarse", "label granularity: coarse|fine")
		out    = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	cfg := data.Config{Seed: *seed, Scale: *scale}
	switch strings.ToLower(*grain) {
	case "coarse":
		cfg.Grain = data.Coarse
	case "fine":
		cfg.Grain = data.Fine
	default:
		log.Fatalf("unknown grain %q (want coarse|fine)", *grain)
	}

	ds, err := generate(*corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("creating %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("closing %s: %v", *out, err)
			}
		}()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		log.Fatalf("writing corpus: %v", err)
	}
	stats := data.Describe(ds)
	fmt.Fprintf(os.Stderr, "gemgen: wrote %s: %d columns, %d types, %d cells\n",
		stats.Name, stats.Columns, stats.Types, stats.TotalCells)
}

// generate builds the named corpus.
func generate(corpus string, cfg data.Config) (*table.Dataset, error) {
	switch strings.ToLower(corpus) {
	case "gds":
		return data.GDS(cfg), nil
	case "wdc":
		return data.WDC(cfg), nil
	case "sato":
		return data.SatoTables(cfg), nil
	case "git":
		return data.GitTables(cfg), nil
	default:
		return nil, fmt.Errorf("unknown corpus %q (want gds|wdc|sato|git)", corpus)
	}
}
