// Command gemserve hosts a warm Gem embedder behind an HTTP JSON API — the
// paper's deployment mode where one corpus-level mixture serves many
// incoming tables without refitting. Columns are answered from a
// content-hash cache when their exact content has been served before, and
// cache misses from concurrent requests are coalesced into single pooled
// signature passes. With -search, every fresh embedding also feeds a warm
// ANN index that answers nearest-column queries.
//
// Usage:
//
//	gemserve -fit catalog.csv -save-model gem.model -addr ""   # fit + persist, no serving
//	gemserve -model gem.model -addr :8080                      # serve the persisted embedder
//	gemserve -model gem.model -search -addr :8080              # + warm similarity search
//	gemserve -fit-synthetic 500 -addr 127.0.0.1:0              # fit a synthetic catalog and serve
//	gemserve -model gem.model -catalog ./store -addr :8080     # durable mutable catalog
//	gemserve -model gem.model -catalog ./store -shards 4       # catalog split across 4 shards
//	gemserve -proxy "http://h1:8080,http://h2:8080"            # scatter-gather front door
//
// Endpoints: POST /embed, POST /search, GET/POST/DELETE /columns,
// POST /columns/compact, GET /healthz, GET /stats. An /embed response is a
// pure function of the request body: repeated posts return byte-identical
// answers whether served cold, cached or coalesced. With -catalog DIR the
// index is durable: adds and removes are journaled to a snapshot+journal
// store, and a restarted server replays them — byte-identical /embed and
// /search answers, no re-embedding. With -shards N the catalog is split
// into N consistent-hashed shards (per-shard stores under DIR/shard-NNN)
// whose scatter-gather /search answers are byte-identical to the unsharded
// server; -proxy fans /search across remote shard processes instead.
//
// On SIGINT/SIGTERM the server stops accepting connections, finishes
// in-flight requests, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"net/http/pprof"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/catalog"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/obs"
	"github.com/gem-embeddings/gem/internal/pool"
	"github.com/gem-embeddings/gem/internal/serve"
	"github.com/gem-embeddings/gem/internal/shard"
)

// cliConfig carries the parsed flags; the build/run helpers are pure in it
// so tests can drive the command without a process boundary.
type cliConfig struct {
	model        string
	fit          string
	fitSynthetic int
	saveModel    string
	addr         string
	components   int
	restarts     int
	seed         int64
	subsample    int
	workers      int
	search       bool
	indexIn      string
	indexCatalog string
	catalogDir   string
	compactEvery int
	metricSpec   string
	precSpec     string
	maxBatch     int
	batchWindow  time.Duration
	cacheSize    int
	shards       int
	proxy        string
	maxBodyBytes int64
	metrics      bool
	slowMS       float64
	pprofAddr    string

	// set records which flags were given explicitly on the command line
	// (filled by flag.Visit), so conflicts with flags that merely have
	// defaults can be told apart from flags the user actually asked for.
	set map[string]bool
}

// isSet reports whether the named flag was explicitly given.
func (c *cliConfig) isSet(name string) bool { return c.set[name] }

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemserve: ")

	var cfg cliConfig
	flag.StringVar(&cfg.model, "model", "", "load a persisted embedder (from -save-model or core.Save)")
	flag.StringVar(&cfg.fit, "fit", "", "fit a fresh embedder on a catalog CSV, directory or glob (gemembed format)")
	flag.IntVar(&cfg.fitSynthetic, "fit-synthetic", 0, "fit a fresh embedder on an N-column synthetic catalog")
	flag.StringVar(&cfg.saveModel, "save-model", "", "persist the embedder after fitting")
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address; empty to exit after -save-model")
	flag.IntVar(&cfg.components, "components", 50, "GMM components when fitting (m)")
	flag.IntVar(&cfg.restarts, "restarts", 3, "EM restarts when fitting")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed when fitting")
	flag.IntVar(&cfg.subsample, "subsample", 8000, "cap on stacked values used to fit the GMM (0 = all)")
	flag.IntVar(&cfg.workers, "workers", 0, "worker-pool width shared by signature fan-out and the index build (0 = GOMAXPROCS; responses are identical for every value)")
	flag.BoolVar(&cfg.search, "search", false, "keep a warm HNSW index fed by served embeddings (enables /search)")
	flag.StringVar(&cfg.indexIn, "index-in", "", "preload a persisted ann index (implies -search)")
	flag.StringVar(&cfg.indexCatalog, "index-catalog", "", "catalog CSV the -index-in index was built from; its numeric headers name the preloaded entries in /search results (otherwise they render as @i)")
	flag.StringVar(&cfg.catalogDir, "catalog", "", "durable catalog store directory (snapshot+journal); implies -search, enables the mutable /columns API and replays the store on restart")
	flag.IntVar(&cfg.compactEvery, "compact-every", 1024, "auto-compact the catalog once this many removes accumulate (search beams widen with uncompacted tombstones, so unbounded churn without compaction degrades /search; <= 0 = only via POST /columns/compact)")
	flag.StringVar(&cfg.metricSpec, "metric", "cosine", "index distance: cosine|l2")
	flag.StringVar(&cfg.precSpec, "precision", "float64", "index scan precision: float64|float32|int8 (reduced tiers re-rank exactly)")
	flag.IntVar(&cfg.maxBatch, "max-batch", 0, "max columns per coalesced signature pass (0 = default 64)")
	flag.DurationVar(&cfg.batchWindow, "batch-window", 0, "how long a batch waits to coalesce (0 = default 200µs)")
	flag.IntVar(&cfg.cacheSize, "cache-size", 0, "column-embedding cache entries (0 = default 4096, negative disables)")
	flag.IntVar(&cfg.shards, "shards", 1, "split the search catalog into N consistent-hashed shards (requires -search or -catalog; /search answers are byte-identical to -shards 1)")
	flag.StringVar(&cfg.proxy, "proxy", "", "comma-separated shard-server URLs; serve a scatter-gather /search front door instead of a model")
	flag.Int64Var(&cfg.maxBodyBytes, "max-body-bytes", 0, "cap on one request body; oversized posts answer 413 (0 = default 8 MiB, negative disables)")
	flag.BoolVar(&cfg.metrics, "metrics", true, "expose Prometheus metrics at GET /metrics (request counters, latency histograms, stage and per-shard timings); responses are byte-identical either way")
	flag.Float64Var(&cfg.slowMS, "slow-ms", 0, "log a structured one-line record (request id + stage breakdown) for every request slower than this many milliseconds (0 disables)")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060); empty disables profiling")
	flag.Parse()
	cfg.set = map[string]bool{}
	flag.Visit(func(f *flag.Flag) { cfg.set[f.Name] = true })

	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(cfg cliConfig, w io.Writer) error {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	return runUntil(cfg, w, stop)
}

// runUntil is run with the shutdown signal injectable, so tests can drain
// a live server without killing the test process.
func runUntil(cfg cliConfig, w io.Writer, stop <-chan os.Signal) error {
	if cfg.pprofAddr != "" {
		stopPprof, err := startPprof(cfg.pprofAddr, w)
		if err != nil {
			return err
		}
		defer stopPprof()
	}
	if cfg.proxy != "" {
		return runProxy(cfg, w, stop)
	}
	if cfg.addr == "" && cfg.saveModel == "" {
		return fmt.Errorf("empty -addr without -save-model does nothing")
	}
	srv, cleanup, err := buildServer(cfg, w)
	if err != nil {
		return err
	}
	defer cleanup()
	if cfg.addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", cfg.addr, err)
	}
	fmt.Fprintf(w, "listening on http://%s (POST /embed, POST /search, /columns, GET /healthz, GET /stats, GET /metrics)\n", ln.Addr())
	return serveAndDrain(newHTTPServer(srv.Handler()), ln, stop, w)
}

// runProxy serves the scatter-gather front door over remote shard servers.
func runProxy(cfg cliConfig, w io.Writer, stop <-chan os.Signal) error {
	// The proxy holds no model: every flag that shapes one is a conflict,
	// not a silent no-op.
	for _, c := range []struct {
		on   bool
		flag string
	}{
		{cfg.model != "", "-model"},
		{cfg.fit != "", "-fit"},
		{cfg.fitSynthetic > 0, "-fit-synthetic"},
		{cfg.search, "-search"},
		{cfg.indexIn != "", "-index-in"},
		{cfg.catalogDir != "", "-catalog"},
		{cfg.isSet("shards"), "-shards"},
	} {
		if c.on {
			return fmt.Errorf("-proxy fronts remote shard servers; it cannot be combined with %s", c.flag)
		}
	}
	if cfg.addr == "" {
		return fmt.Errorf("-proxy needs a listen -addr")
	}
	pcfg := serve.ProxyConfig{
		Backends:     strings.Split(cfg.proxy, ","),
		MaxBodyBytes: cfg.maxBodyBytes,
	}
	if cfg.metrics {
		pcfg.Metrics = obs.NewRegistry()
	}
	p, err := serve.NewProxy(pcfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", cfg.addr, err)
	}
	fmt.Fprintf(w, "proxying %d shards on http://%s (POST /search, GET /healthz, GET /stats, GET /metrics)\n",
		len(strings.Split(cfg.proxy, ",")), ln.Addr())
	return serveAndDrain(newHTTPServer(p.Handler()), ln, stop, w)
}

// startPprof serves net/http/pprof on its own listener, kept off the API
// address so profiling endpoints are never reachable through the public
// port. Returns a closer for the listener.
func startPprof(addr string, w io.Writer) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listening for pprof on %s: %w", addr, err)
	}
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("pprof server: %v", err)
		}
	}()
	fmt.Fprintf(w, "pprof on http://%s/debug/pprof/\n", ln.Addr())
	return func() { hs.Close() }, nil
}

// newHTTPServer wraps a handler with the serving timeouts a public
// listener needs: a header deadline so idle half-open connections
// (slowloris) cannot pin goroutines forever, and an idle keep-alive cap.
// Request bodies are bounded separately by -max-body-bytes.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// serveAndDrain serves until the listener fails or a shutdown signal
// arrives; on the signal it stops accepting connections, lets in-flight
// requests finish (bounded), and reports a clean exit.
func serveAndDrain(hs *http.Server, ln net.Listener, stop <-chan os.Signal, w io.Writer) error {
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		fmt.Fprintf(w, "received %v, draining in-flight requests\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("draining: %w", err)
		}
		<-errc // Serve has returned ErrServerClosed
		fmt.Fprintf(w, "drained, exiting\n")
		return nil
	}
}

// buildServer assembles the warm server: embedder (loaded or freshly
// fitted, optionally persisted), optional search index or durable catalog
// store, serve config. cleanup closes the server and, after it, the store
// whose journal the server writes.
func buildServer(cfg cliConfig, w io.Writer) (srv *serve.Server, cleanup func(), err error) {
	// Cross-flag conflicts fail before the embedder is loaded or fitted:
	// a paper-sized fit takes minutes, and the conflicting flag would
	// otherwise be silently ignored after that work is done.
	if cfg.indexCatalog != "" && cfg.indexIn == "" {
		return nil, nil, fmt.Errorf("-index-catalog names the entries of a preloaded index; it requires -index-in")
	}
	if cfg.catalogDir != "" && cfg.indexIn != "" {
		return nil, nil, fmt.Errorf("-catalog replays its own index; it cannot be combined with -index-in")
	}
	if cfg.indexIn != "" && cfg.isSet("precision") {
		return nil, nil, fmt.Errorf("-precision is baked into a saved index at build time; it cannot change one loaded with -index-in")
	}
	if cfg.shards > 1 {
		if cfg.indexIn != "" {
			return nil, nil, fmt.Errorf("-index-in preloads one unsharded index; it cannot be combined with -shards")
		}
		if !cfg.search && cfg.catalogDir == "" {
			return nil, nil, fmt.Errorf("-shards splits the search catalog; it requires -search or -catalog")
		}
	}
	if cfg.isSet("shards") && cfg.shards < 1 {
		return nil, nil, fmt.Errorf("-shards must be at least 1, got %d", cfg.shards)
	}
	emb, err := buildEmbedder(cfg, w)
	if err != nil {
		return nil, nil, err
	}
	scfg := serve.Config{
		MaxBatch:      cfg.maxBatch,
		BatchWindow:   cfg.batchWindow,
		CacheSize:     cfg.cacheSize,
		CompactEvery:  cfg.compactEvery,
		MaxBodyBytes:  cfg.maxBodyBytes,
		SlowThreshold: time.Duration(cfg.slowMS * float64(time.Millisecond)),
	}
	if cfg.metrics {
		scfg.Metrics = obs.NewRegistry()
	}
	if cfg.shards > 1 {
		return buildShardedServer(cfg, emb, scfg, w)
	}
	if cfg.search || cfg.indexIn != "" || cfg.catalogDir != "" {
		idx, err := buildIndex(cfg, pool.New(emb.Config().Workers))
		if err != nil {
			return nil, nil, err
		}
		scfg.Index = idx
		if cfg.indexCatalog != "" {
			names, err := catalogHeaders(cfg.indexCatalog)
			if err != nil {
				return nil, nil, err
			}
			scfg.IndexNames = names
		}
	}
	var st *catalog.Store
	if cfg.catalogDir != "" {
		fp, err := emb.Fingerprint()
		if err != nil {
			return nil, nil, err
		}
		// The store is bound to the embedder AND the index configuration:
		// replaying a journal into an index with a different metric or
		// seed would silently change /search, so it must fail instead.
		if st, err = catalog.Open(cfg.catalogDir, serve.StoreIdentity(fp, scfg.Index)); err != nil {
			return nil, nil, err
		}
		scfg.Store = st
		fmt.Fprintf(w, "catalog store %s: %d live columns\n", cfg.catalogDir, st.Len())
	}
	srv, err = serve.New(emb, scfg)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, nil, err
	}
	cleanup = func() {
		srv.Close()
		if st != nil {
			if err := st.Close(); err != nil {
				log.Printf("closing catalog store: %v", err)
			}
		}
	}
	fp := srv.Fingerprint()
	fmt.Fprintf(w, "warm embedder ready: %d components, dim %d, fingerprint %s\n",
		emb.Model().K(), srv.Dim(), fp[:12])
	return srv, cleanup, nil
}

// buildShardedServer assembles the -shards N catalog: N identically
// configured indexes (and, with -catalog, N per-shard stores under
// DIR/shard-NNN whose identities bind their shard coordinate), merged
// behind one scatter-gather serve.Catalog.
func buildShardedServer(cfg cliConfig, emb *core.Embedder, scfg serve.Config, w io.Writer) (srv *serve.Server, cleanup func(), err error) {
	p := pool.New(emb.Config().Workers)
	idxs := make([]ann.Index, cfg.shards)
	for i := range idxs {
		if idxs[i], err = buildIndex(cfg, p); err != nil {
			return nil, nil, err
		}
	}
	var stores []*catalog.Store
	closeStores := func() {
		for _, st := range stores {
			if st != nil {
				st.Close()
			}
		}
	}
	if cfg.catalogDir != "" {
		fp, err := emb.Fingerprint()
		if err != nil {
			return nil, nil, err
		}
		// An unsharded store keeps its files at the top of the directory; a
		// sharded server must not quietly ignore them (the columns would
		// vanish from /search), so their presence is a refused downgrade.
		for _, f := range []string{"snapshot.gemcat", "journal.gemcat"} {
			if _, statErr := os.Stat(filepath.Join(cfg.catalogDir, f)); statErr == nil {
				return nil, nil, fmt.Errorf("%s holds an unsharded catalog store (%s); -shards %d needs a fresh directory",
					cfg.catalogDir, f, cfg.shards)
			}
		}
		stores = make([]*catalog.Store, cfg.shards)
		for i := range stores {
			st, err := catalog.Open(
				filepath.Join(cfg.catalogDir, fmt.Sprintf("shard-%03d", i)),
				serve.StoreIdentityShard(fp, idxs[i], i, cfg.shards))
			if err != nil {
				closeStores()
				return nil, nil, err
			}
			stores[i] = st
		}
		total := 0
		for _, st := range stores {
			total += st.Len()
		}
		fmt.Fprintf(w, "catalog store %s: %d shards, %d live columns\n", cfg.catalogDir, cfg.shards, total)
	}
	cat, err := shard.New(shard.Config{
		Indexes: idxs,
		Stores:  stores,
		Pool:    p,
	})
	if err != nil {
		closeStores()
		return nil, nil, err
	}
	scfg.Catalog = cat
	srv, err = serve.New(emb, scfg)
	if err != nil {
		closeStores()
		return nil, nil, err
	}
	cleanup = func() {
		srv.Close()
		closeStores()
	}
	fp := srv.Fingerprint()
	fmt.Fprintf(w, "warm embedder ready: %d components, dim %d, %d shards, fingerprint %s\n",
		emb.Model().K(), srv.Dim(), cfg.shards, fp[:12])
	return srv, cleanup, nil
}

func buildEmbedder(cfg cliConfig, w io.Writer) (*core.Embedder, error) {
	modes := 0
	for _, on := range []bool{cfg.model != "", cfg.fit != "", cfg.fitSynthetic > 0} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return nil, fmt.Errorf("need exactly one embedder source: -model file, -fit file.csv, or -fit-synthetic N")
	}
	if cfg.saveModel != "" && cfg.model != "" {
		return nil, fmt.Errorf("-save-model persists a freshly fitted embedder; it cannot be combined with -model (the file already exists)")
	}
	if cfg.model != "" {
		// A persisted model is already fitted: fit parameters given
		// explicitly alongside it would be silently ignored.
		for _, f := range []string{"components", "restarts", "subsample"} {
			if cfg.isSet(f) {
				return nil, fmt.Errorf("-%s tunes the model fit; it cannot change a model loaded with -model", f)
			}
		}
	}

	if cfg.model != "" {
		f, err := os.Open(cfg.model)
		if err != nil {
			return nil, fmt.Errorf("opening model: %w", err)
		}
		defer f.Close()
		emb, err := core.LoadEmbedder(f)
		if err != nil {
			return nil, err
		}
		emb.SetWorkers(cfg.workers)
		fmt.Fprintf(w, "model loaded from %s\n", cfg.model)
		return emb, nil
	}

	src, err := catalog.Spec{Path: cfg.fit, Synthetic: cfg.fitSynthetic, Seed: cfg.seed}.Source()
	if err != nil {
		return nil, err
	}
	ds, err := src.Load()
	if err != nil {
		return nil, err
	}
	emb, err := core.NewEmbedder(core.Config{
		Components:     cfg.components,
		Restarts:       cfg.restarts,
		Seed:           cfg.seed,
		SubsampleStack: cfg.subsample,
		Workers:        cfg.workers,
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := emb.Fit(ds); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "fitted on %d columns (%d values) in %.2fs\n",
		len(ds.Columns), ds.TotalValues(), time.Since(start).Seconds())
	if st := emb.FitStats(); st != nil && st.Winner >= 0 {
		win := st.Restarts[st.Winner]
		fmt.Fprintf(w, "fit telemetry: restart %d/%d won with logL %.4f after %d iterations (converged=%v); %d EM iterations total, E-step %.2fs, M-step %.2fs\n",
			st.Winner+1, len(st.Restarts), win.LogLikelihood, win.Iterations, win.Converged,
			st.Iterations(), st.EStepSeconds, st.MStepSeconds)
	}
	if cfg.saveModel != "" {
		f, err := os.Create(cfg.saveModel)
		if err != nil {
			return nil, fmt.Errorf("creating model file: %w", err)
		}
		if err := emb.Save(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("closing model file: %w", err)
		}
		fmt.Fprintf(w, "model saved to %s\n", cfg.saveModel)
	}
	return emb, nil
}

// catalogHeaders reads the numeric-column headers of a catalog CSV, in the
// order gemsearch indexes them, to name preloaded index entries.
func catalogHeaders(path string) ([]string, error) {
	ds, err := catalog.File(path).Load()
	if err != nil {
		return nil, err
	}
	return ds.Headers(), nil
}

// buildIndex builds or loads one index on the given worker pool. Every
// index of a sharded server shares ONE pool with the catalog's scatter
// loop: the pool's caller-runs design degrades nested fan-out (shards ×
// batched queries) to the same w slots instead of oversubscribing.
func buildIndex(cfg cliConfig, p *pool.Pool) (ann.Index, error) {
	metric, err := ann.ParseMetric(cfg.metricSpec)
	if err != nil {
		return nil, err
	}
	prec := ann.Float64
	if cfg.precSpec != "" {
		if prec, err = ann.ParsePrecision(cfg.precSpec); err != nil {
			return nil, err
		}
	}
	if cfg.indexIn != "" {
		f, err := os.Open(cfg.indexIn)
		if err != nil {
			return nil, fmt.Errorf("opening index: %w", err)
		}
		defer f.Close()
		idx, err := ann.Load(f, p)
		if err != nil {
			return nil, err
		}
		if idx.Metric() != metric {
			return nil, fmt.Errorf("index %s uses metric %s, want %s (pass -metric %s)",
				cfg.indexIn, idx.Metric(), metric, idx.Metric())
		}
		return idx, nil
	}
	return ann.NewHNSW(ann.HNSWConfig{Metric: metric, Seed: cfg.seed, Precision: prec}, p)
}
