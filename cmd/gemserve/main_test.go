package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/table"
)

func tinyCfg() cliConfig {
	return cliConfig{
		fitSynthetic: 40,
		seed:         1,
		components:   8,
		restarts:     1,
		subsample:    2000,
		workers:      2,
		metricSpec:   "cosine",
	}
}

func TestPersistThenServeModel(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "gem.model")

	// Phase 1: fit + persist, no serving (-addr "").
	cfg := tinyCfg()
	cfg.saveModel = model
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("persist run: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"fitted on 40 columns", "model saved to"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model file not written: %v", err)
	}

	// Phase 2: a server built from the persisted model answers requests.
	scfg := tinyCfg()
	scfg.fitSynthetic = 0
	scfg.model = model
	scfg.search = true
	buf.Reset()
	srv, cleanup, err := buildServer(scfg, &buf)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	defer cleanup()
	if !strings.Contains(buf.String(), "model loaded from") ||
		!strings.Contains(buf.String(), "warm embedder ready") {
		t.Errorf("startup output:\n%s", buf.String())
	}

	col := table.Column{Name: "probe", Values: []float64{1, 2, 3, 4, 5, 6}}
	rows, err := srv.Embed(context.Background(), []table.Column{col})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != srv.Dim() {
		t.Fatalf("embed shape: %d rows, dim %d vs %d", len(rows), len(rows[0]), srv.Dim())
	}
	if _, err := srv.Search(context.Background(), col, 0); err == nil {
		t.Error("k=0 search must fail")
	}

	// The HTTP surface is wired through.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
}

func TestPreloadedIndexWithCatalogNames(t *testing.T) {
	dir := t.TempDir()
	catalog := filepath.Join(dir, "catalog.csv")
	model := filepath.Join(dir, "gem.model")
	index := filepath.Join(dir, "catalog.idx")

	// A small catalog on disk, the CSV being the name source.
	ds := data.ScalabilityDataset(10, 4)
	cf, err := os.Create(catalog)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(cf); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}

	// Fit + persist on that catalog.
	cfg := tinyCfg()
	cfg.fitSynthetic = 0
	cfg.fit = catalog
	cfg.saveModel = model
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("persist run: %v\n%s", err, buf.String())
	}

	// Build and persist a flat index over the catalog embeddings, in
	// catalog order (how gemsearch -index-out does it).
	mf, err := os.Open(model)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := core.LoadEmbedder(mf)
	mf.Close()
	if err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(catalog)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := table.ReadCSV(rf, catalog)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	vs, err := emb.EmbedVectors(parsed, ann.Cosine)
	if err != nil {
		t.Fatal(err)
	}
	flat := ann.NewFlat(ann.Cosine)
	if err := flat.Add(vs.Vectors...); err != nil {
		t.Fatal(err)
	}
	xf, err := os.Create(index)
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Save(xf); err != nil {
		t.Fatal(err)
	}
	if err := xf.Close(); err != nil {
		t.Fatal(err)
	}

	// Serve the persisted model + index + catalog names: /search hits
	// must carry the real headers, not "@i" placeholders.
	scfg := tinyCfg()
	scfg.fitSynthetic = 0
	scfg.model = model
	scfg.indexIn = index
	scfg.indexCatalog = catalog
	buf.Reset()
	srv, cleanup, err := buildServer(scfg, &buf)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	defer cleanup()
	hits, err := srv.Search(context.Background(), parsed.Columns[3], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2", len(hits))
	}
	valid := map[string]bool{}
	for _, n := range vs.Names {
		valid[n] = true
	}
	for _, h := range hits {
		if !valid[h.Name] || strings.HasPrefix(h.Name, "@") {
			t.Errorf("preloaded hit not named from the catalog: %+v", h)
		}
	}

	// -index-catalog without -index-in is rejected.
	bad := tinyCfg()
	bad.addr = "127.0.0.1:0"
	bad.indexCatalog = catalog
	if err := run(bad, &buf); err == nil || !strings.Contains(err.Error(), "requires -index-in") {
		t.Errorf("-index-catalog without -index-in: got %v", err)
	}
}

// TestRunFlagConflicts: combinations where one flag would silently
// override or ignore another are rejected up front, before the embedder
// is loaded or fitted. cfg.set simulates flags given explicitly on the
// command line.
func TestRunFlagConflicts(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  cliConfig
		want string // substring of the expected error
	}{
		{
			name: "model+components",
			cfg: cliConfig{model: "x.model", addr: "127.0.0.1:0",
				components: 25, set: map[string]bool{"components": true}},
			want: "-components tunes the model fit",
		},
		{
			name: "model+restarts",
			cfg: cliConfig{model: "x.model", addr: "127.0.0.1:0",
				restarts: 5, set: map[string]bool{"restarts": true}},
			want: "-restarts tunes the model fit",
		},
		{
			name: "model+subsample",
			cfg: cliConfig{model: "x.model", addr: "127.0.0.1:0",
				subsample: 100, set: map[string]bool{"subsample": true}},
			want: "-subsample tunes the model fit",
		},
		{
			name: "model+save-model",
			cfg: cliConfig{model: "x.model", saveModel: "y.model",
				addr: "127.0.0.1:0"},
			want: "cannot be combined with -model",
		},
		{
			name: "index-in+precision",
			cfg: cliConfig{model: "x.model", addr: "127.0.0.1:0",
				indexIn: "x.idx", precSpec: "int8",
				set: map[string]bool{"precision": true}},
			want: "cannot change one loaded with -index-in",
		},
		{
			name: "catalog+index-in",
			cfg: cliConfig{model: "x.model", addr: "127.0.0.1:0",
				catalogDir: "store", indexIn: "x.idx"},
			want: "cannot be combined with -index-in",
		},
		{
			name: "index-catalog-without-index-in",
			cfg: cliConfig{model: "x.model", addr: "127.0.0.1:0",
				indexCatalog: "x.csv"},
			want: "requires -index-in",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.cfg, &bytes.Buffer{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
	// Defaults are not conflicts: the same values without cfg.set pass the
	// conflict gate (and fail later on the missing model file instead).
	cfg := cliConfig{model: "no-such.model", addr: "127.0.0.1:0", components: 25}
	err := run(cfg, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "opening model") {
		t.Errorf("default-valued flag treated as conflict: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var buf bytes.Buffer

	// No embedder source.
	if err := run(cliConfig{addr: "127.0.0.1:0"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "exactly one embedder source") {
		t.Errorf("no source: got %v", err)
	}

	// Two sources.
	cfg := tinyCfg()
	cfg.addr = "127.0.0.1:0"
	cfg.model = "x.model"
	if err := run(cfg, &buf); err == nil ||
		!strings.Contains(err.Error(), "exactly one embedder source") {
		t.Errorf("two sources: got %v", err)
	}

	// Empty addr without save-model.
	cfg2 := tinyCfg()
	if err := run(cfg2, &buf); err == nil ||
		!strings.Contains(err.Error(), "does nothing") {
		t.Errorf("empty addr: got %v", err)
	}

	// Missing model file surfaces cleanly.
	cfg3 := cliConfig{model: filepath.Join(t.TempDir(), "absent.model"), addr: "127.0.0.1:0"}
	if err := run(cfg3, &buf); err == nil || !strings.Contains(err.Error(), "opening model") {
		t.Errorf("absent model: got %v", err)
	}

	// -save-model with -model is a silent no-op trap: reject it.
	cfg5 := cliConfig{model: "x.model", saveModel: "y.model", addr: "127.0.0.1:0"}
	if err := run(cfg5, &buf); err == nil ||
		!strings.Contains(err.Error(), "cannot be combined with -model") {
		t.Errorf("-model + -save-model: got %v", err)
	}

	// Bad metric.
	cfg4 := tinyCfg()
	cfg4.addr = "127.0.0.1:0"
	cfg4.search = true
	cfg4.metricSpec = "manhattan"
	if err := run(cfg4, &buf); err == nil || !strings.Contains(err.Error(), "unknown metric") {
		t.Errorf("bad metric: got %v", err)
	}
}

// TestDurableCatalogAcrossRestart drives the CLI's -catalog mode: a server
// enrolls and removes columns via the /columns API, a second server built
// on the same model and store directory replays them, and /search answers
// byte-identically across the restart.
func TestDurableCatalogAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "gem.model")
	store := filepath.Join(dir, "store")

	cfg := tinyCfg()
	cfg.saveModel = model
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("persist run: %v\n%s", err, buf.String())
	}

	scfg := tinyCfg()
	scfg.fitSynthetic = 0
	scfg.model = model
	scfg.catalogDir = store

	searchBody := func(ts *httptest.Server) []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+"/search", "application/json",
			strings.NewReader(`{"column":{"name":"probe","values":[2,4,6,8,10,12]},"k":3}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search: %d %s", resp.StatusCode, b)
		}
		return b
	}

	// Server A: enroll 6 columns, remove 2.
	buf.Reset()
	srv, cleanup, err := buildServer(scfg, &buf)
	if err != nil {
		t.Fatalf("buildServer: %v\n%s", err, buf.String())
	}
	ds := data.ScalabilityDataset(12, 9)
	if _, err := srv.AddColumns(context.Background(), ds.Columns[:6]); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RemoveColumns("@1", "@4"); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srv.Handler())
	want := searchBody(tsA)
	tsA.Close()
	cleanup()

	// With the store closed (and its lock released): a refitted model must
	// be rejected against the old store.
	other := tinyCfg()
	other.seed = 99
	other.catalogDir = store
	other.addr = "127.0.0.1:0"
	var obuf bytes.Buffer
	if err := run(other, &obuf); err == nil || !strings.Contains(err.Error(), "store belongs to embedder") {
		t.Errorf("mismatched model vs store: got %v", err)
	}

	// -catalog cannot be combined with -index-in.
	bad := tinyCfg()
	bad.catalogDir = store
	bad.indexIn = filepath.Join(dir, "x.idx")
	bad.addr = "127.0.0.1:0"
	if err := run(bad, &obuf); err == nil || !strings.Contains(err.Error(), "cannot be combined with -index-in") {
		t.Errorf("-catalog + -index-in: got %v", err)
	}

	// Server B: same model, same store.
	buf.Reset()
	srv2, cleanup2, err := buildServer(scfg, &buf)
	if err != nil {
		t.Fatalf("restart buildServer: %v\n%s", err, buf.String())
	}
	defer cleanup2()
	if !strings.Contains(buf.String(), "4 live columns") {
		t.Errorf("restart output missing replayed store:\n%s", buf.String())
	}
	if srv2.IndexLen() != 4 {
		t.Fatalf("restarted live %d, want 4", srv2.IndexLen())
	}
	tsB := httptest.NewServer(srv2.Handler())
	defer tsB.Close()
	if got := searchBody(tsB); !bytes.Equal(want, got) {
		t.Errorf("search changed across restart:\npre:  %s\npost: %s", want, got)
	}

	// While B holds the store, a concurrent server on the same directory
	// is locked out.
	if err := run(other, &obuf); err == nil || !strings.Contains(err.Error(), "locked by another process") {
		t.Errorf("concurrent open of a held store: got %v", err)
	}
}
