package main

// CLI-level tests for the sharded catalog (-shards), the scatter-gather
// front door (-proxy) and the graceful drain: a SIGTERM'd server finishes
// the in-flight request before exiting.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/gem-embeddings/gem/internal/data"
)

// TestShardedCatalogAcrossRestart: -shards 3 -catalog DIR journals each
// column to its owning shard's store and a restarted server replays all
// three, answering /search byte-identically.
func TestShardedCatalogAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "gem.model")
	store := filepath.Join(dir, "store")

	cfg := tinyCfg()
	cfg.saveModel = model
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("persist run: %v\n%s", err, buf.String())
	}

	scfg := tinyCfg()
	scfg.fitSynthetic = 0
	scfg.model = model
	scfg.catalogDir = store
	scfg.shards = 3

	searchBody := func(ts *httptest.Server) []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+"/search", "application/json",
			strings.NewReader(`{"column":{"name":"probe","values":[2,4,6,8,10,12]},"k":4}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search: %d %s", resp.StatusCode, b)
		}
		return b
	}

	buf.Reset()
	srv, cleanup, err := buildServer(scfg, &buf)
	if err != nil {
		t.Fatalf("buildServer: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "3 shards") {
		t.Errorf("startup output missing shard count:\n%s", buf.String())
	}
	ds := data.ScalabilityDataset(12, 9)
	if _, err := srv.AddColumns(context.Background(), ds.Columns[:8]); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RemoveColumns("@2", "@6"); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Shards != 3 || st.StoreColumns != 6 {
		t.Fatalf("stats: %+v", st)
	}
	tsA := httptest.NewServer(srv.Handler())
	want := searchBody(tsA)
	tsA.Close()
	cleanup()

	// Each shard got its own store directory.
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(filepath.Join(store, fmt.Sprintf("shard-%03d", i), "journal.gemcat")); err != nil {
			t.Errorf("shard %d store missing: %v", i, err)
		}
	}

	// Restart over the same stores: byte-identical /search.
	buf.Reset()
	srv2, cleanup2, err := buildServer(scfg, &buf)
	if err != nil {
		t.Fatalf("restart buildServer: %v\n%s", err, buf.String())
	}
	defer cleanup2()
	if !strings.Contains(buf.String(), "3 shards, 6 live columns") {
		t.Errorf("restart output missing replayed stores:\n%s", buf.String())
	}
	tsB := httptest.NewServer(srv2.Handler())
	defer tsB.Close()
	if got := searchBody(tsB); !bytes.Equal(want, got) {
		t.Errorf("search changed across sharded restart:\npre:  %s\npost: %s", want, got)
	}
}

// TestShardedRejectsUnshardedStore: pointing -shards at a directory that
// already holds an unsharded store must fail, not silently hide its
// columns.
func TestShardedRejectsUnshardedStore(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "gem.model")
	store := filepath.Join(dir, "store")
	cfg := tinyCfg()
	cfg.saveModel = model
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(store, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(store, "journal.gemcat"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	scfg := tinyCfg()
	scfg.fitSynthetic = 0
	scfg.model = model
	scfg.catalogDir = store
	scfg.shards = 2
	if _, _, err := buildServer(scfg, &buf); err == nil ||
		!strings.Contains(err.Error(), "unsharded catalog store") {
		t.Fatalf("unsharded store accepted by -shards: %v", err)
	}
}

func TestShardAndProxyFlagConflicts(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  cliConfig
		want string
	}{
		{
			name: "shards+index-in",
			cfg: cliConfig{model: "x.model", addr: "127.0.0.1:0",
				shards: 2, indexIn: "x.idx"},
			want: "cannot be combined with -shards",
		},
		{
			name: "shards-without-search",
			cfg: cliConfig{model: "x.model", addr: "127.0.0.1:0",
				shards: 2},
			want: "requires -search or -catalog",
		},
		{
			name: "shards-zero",
			cfg: cliConfig{model: "x.model", addr: "127.0.0.1:0",
				shards: 0, search: true, set: map[string]bool{"shards": true}},
			want: "-shards must be at least 1",
		},
		{
			name: "proxy+model",
			cfg: cliConfig{proxy: "http://h:1", model: "x.model",
				addr: "127.0.0.1:0"},
			want: "cannot be combined with -model",
		},
		{
			name: "proxy+catalog",
			cfg: cliConfig{proxy: "http://h:1", catalogDir: "store",
				addr: "127.0.0.1:0"},
			want: "cannot be combined with -catalog",
		},
		{
			name: "proxy+shards",
			cfg: cliConfig{proxy: "http://h:1", shards: 2,
				addr: "127.0.0.1:0", set: map[string]bool{"shards": true}},
			want: "cannot be combined with -shards",
		},
		{
			name: "proxy-bad-backend",
			cfg:  cliConfig{proxy: "h:1", addr: "127.0.0.1:0"},
			want: "not an http(s) URL",
		},
		{
			name: "proxy-empty-addr",
			cfg:  cliConfig{proxy: "http://h:1"},
			want: "needs a listen -addr",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.cfg, &bytes.Buffer{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestGracefulDrain: a server that receives the shutdown signal while a
// request is in flight finishes that request (200, full body) before
// serveAndDrain returns cleanly.
func TestGracefulDrain(t *testing.T) {
	scfg := tinyCfg()
	scfg.search = true
	var buf bytes.Buffer
	srv, cleanup, err := buildServer(scfg, &buf)
	if err != nil {
		t.Fatalf("buildServer: %v\n%s", err, buf.String())
	}
	defer cleanup()

	// Gate the handler so the test controls when the in-flight request
	// completes: the request parks inside the server until released.
	inner := srv.Handler()
	var enterOnce sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	gated := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enterOnce.Do(func() { close(entered) })
		<-release
		inner.ServeHTTP(w, r)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() { served <- serveAndDrain(newHTTPServer(gated), ln, stop, &buf) }()

	type reply struct {
		code int
		body []byte
		err  error
	}
	got := make(chan reply, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/embed", "application/json",
			strings.NewReader(`{"columns":[{"name":"c","values":[1,2,3,4,5,6]}]}`))
		if err != nil {
			got <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		got <- reply{code: resp.StatusCode, body: b}
	}()

	<-entered
	stop <- syscall.SIGTERM

	// The drain must wait for the parked request: serveAndDrain must not
	// return while the handler is still blocked.
	select {
	case err := <-served:
		t.Fatalf("serveAndDrain returned %v with a request still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK || !bytes.Contains(r.body, []byte(`"embeddings"`)) {
		t.Fatalf("in-flight request answer: %d %s", r.code, r.body)
	}
	if err := <-served; err != nil {
		t.Fatalf("serveAndDrain: %v", err)
	}
	if !strings.Contains(buf.String(), "draining in-flight requests") ||
		!strings.Contains(buf.String(), "drained, exiting") {
		t.Errorf("drain log:\n%s", buf.String())
	}
}
