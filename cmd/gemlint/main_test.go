package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the driver to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module example.com/mini\n\ngo 1.22\n"

const dirtyPkg = `// Package det is marked deterministic but reads the wall clock.
//
//gem:deterministic
package det

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
`

const cleanPkg = `// Package det is marked deterministic and stays that way.
//
//gem:deterministic
package det

func Stamp() int64 {
	return 42
}
`

const stalePkg = `// Package det carries a suppression with nothing to suppress.
//
//gem:deterministic
package det

func Stamp() int64 {
	//lint:gemallow detnondet leftover excuse from deleted code
	return 42
}
`

func TestRunFindsViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     goMod,
		"det/det.go": dirtyPkg,
	})
	var stdout, stderr bytes.Buffer
	code := run(dir, []string{"./..."}, false, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "detnondet") || !strings.Contains(out, "time.Now") {
		t.Fatalf("output missing detnondet/time.Now finding:\n%s", out)
	}
	if !strings.Contains(out, "det.go:9:") {
		t.Fatalf("output missing file:line anchor:\n%s", out)
	}
}

func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     goMod,
		"det/det.go": cleanPkg,
	})
	var stdout, stderr bytes.Buffer
	code := run(dir, []string{"./..."}, false, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean module produced output:\n%s", stdout.String())
	}
}

func TestRunReportsStaleSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     goMod,
		"det/det.go": stalePkg,
	})
	var stdout, stderr bytes.Buffer
	code := run(dir, []string{"./det"}, false, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "stale suppression") {
		t.Fatalf("output missing stale-suppression finding:\n%s", stdout.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     goMod,
		"det/det.go": dirtyPkg,
	})
	var stdout, stderr bytes.Buffer
	code := run(dir, []string{"./..."}, true, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var fs []finding
	if err := json.Unmarshal(stdout.Bytes(), &fs); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(fs) != 1 || fs[0].Analyzer != "detnondet" || fs[0].Line != 9 {
		t.Fatalf("findings = %+v, want one detnondet finding on line 9", fs)
	}
}
