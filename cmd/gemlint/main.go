// Command gemlint runs the repo's contract analyzers over Go packages
// and fails when any contract is violated. It is the mechanical
// enforcement for the invariants the packages only used to document:
// determinism of marked packages (detmaprange, detnondet), the pool's
// caller-runs no-oversubscription contract (poolgo), bound-checked
// decode lengths (decodebound), and the JSON error-body contract of the
// serving layer (errjson). See internal/lint's package doc for the
// contract catalog, the //gem: markers, and the //lint:gemallow
// suppression syntax.
//
// Usage:
//
//	gemlint ./...                 # the whole module
//	gemlint ./internal/gmm        # one package
//	gemlint -json ./...           # machine-readable findings
//
// gemlint exits 0 when every analyzed package is clean, 1 when it found
// diagnostics, stale suppressions, or malformed suppressions, and 2 on
// a usage or load error. A stale suppression — a //lint:gemallow that
// silences nothing — is itself a finding: suppressions must not outlive
// the code they excused.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/gem-embeddings/gem/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gemlint [-json] packages...\n  (patterns: ./..., ./dir/..., ./dir, or import paths)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gemlint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(run(dir, flag.Args(), *jsonOut, os.Stdout, os.Stderr))
}

// finding is one reported problem: an analyzer diagnostic or a bad
// suppression.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col,omitempty"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run is the testable driver body: resolve patterns, analyze each
// package with the full suite, print findings, and return the exit code.
func run(dir string, patterns []string, jsonOut bool, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(stderr, "gemlint: %v\n", err)
		return 2
	}
	paths, err := resolve(loader, dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "gemlint: %v\n", err)
		return 2
	}
	var findings []finding
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "gemlint: %v\n", err)
			return 2
		}
		diags, bad, err := lint.RunPackage(pkg, lint.Analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "gemlint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			findings = append(findings, finding{
				File: rel(dir, pos.Filename), Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		for _, a := range bad {
			msg := fmt.Sprintf("stale suppression: no %s diagnostic on this or the next line (%s)", a.Analyzer, a.Reason)
			if a.Malformed != "" {
				msg = "malformed suppression: " + a.Malformed
			} else if a.FileWide {
				msg = fmt.Sprintf("stale suppression: no %s diagnostic in this file (%s)", a.Analyzer, a.Reason)
			}
			findings = append(findings, finding{
				File: rel(dir, a.File), Line: a.Line,
				Analyzer: "gemallow", Message: msg,
			})
		}
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "gemlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			if f.Col > 0 {
				fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
			} else {
				fmt.Fprintf(stdout, "%s:%d: %s: %s\n", f.File, f.Line, f.Analyzer, f.Message)
			}
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// resolve expands package patterns into import paths: "./..." and
// "./dir/..." walk the tree, "./dir" names one directory, anything else
// is taken as an import path.
func resolve(loader *lint.Loader, dir string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(paths ...string) {
		for _, p := range paths {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./...":
			paths, err := loader.DiscoverPackages(dir)
			if err != nil {
				return nil, err
			}
			add(paths...)
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(dir, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			paths, err := loader.DiscoverPackages(root)
			if err != nil {
				return nil, err
			}
			add(paths...)
		case strings.HasPrefix(pat, "./") || pat == ".":
			abs, err := filepath.Abs(filepath.Join(dir, filepath.FromSlash(pat)))
			if err != nil {
				return nil, err
			}
			relPath, err := filepath.Rel(loader.ModuleDir, abs)
			if err != nil {
				return nil, err
			}
			if relPath == "." {
				add(loader.ModulePath)
			} else {
				add(loader.ModulePath + "/" + filepath.ToSlash(relPath))
			}
		default:
			add(pat)
		}
	}
	return out, nil
}

// rel shortens a filename to be relative to the invocation directory
// when possible; diagnostics stay clickable either way.
func rel(dir, name string) string {
	if r, err := filepath.Rel(dir, name); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return name
}
