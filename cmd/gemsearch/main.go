// Command gemsearch serves the paper's retrieval workload at catalog
// scale: it embeds the numeric columns of a catalog with Gem, builds an
// HNSW index over the embeddings (or loads a previously saved one), and
// answers top-k similarity queries for a query column. With -recall it
// replays every column as a query against the exact brute-force baseline
// and reports recall@k and the throughput of both indexes.
//
// Usage:
//
//	gemsearch -in catalog.csv -query price -k 10
//	gemsearch -synthetic 1000 -recall
//	gemsearch -in catalog.csv -index-out catalog.idx
//	gemsearch -in catalog.csv -index-in catalog.idx -query "@17"
//
// The catalog is a CSV in the gemembed format (header row, optional
// "#type:" ground-truth row, data rows), a directory or glob of such CSVs,
// or -synthetic N for an N-column synthetic catalog — all resolved through
// the shared internal/catalog ingest layer. With -catalog DIR the command
// instead searches the embeddings recorded in a gemserve catalog store:
// no model, no fitting — the stored rows are indexed directly. A query
// names a column header (first match wins) or addresses a column by
// position with "@i". -min-recall turns the recall report into a gate:
// the command fails when HNSW recall@k falls below the bound (CI uses
// this as the smoke check).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/catalog"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/experiments"
	"github.com/gem-embeddings/gem/internal/pool"
	"github.com/gem-embeddings/gem/internal/stats"
	"github.com/gem-embeddings/gem/internal/table"
)

// cliConfig carries the parsed flags; run is pure in it so tests can drive
// the whole command without a process boundary.
type cliConfig struct {
	in         string
	synthetic  int
	catalogDir string
	seed       int64
	components int
	restarts   int
	subsample  int
	workers    int
	metricSpec string
	precSpec   string
	m          int
	efc        int
	efs        int
	k          int
	query      string
	recall     bool
	minRecall  float64
	indexIn    string
	indexOut   string

	// set records which flags were given explicitly on the command line
	// (filled by flag.Visit), so conflicts with flags that merely have
	// defaults can be told apart from flags the user actually asked for.
	set map[string]bool
}

// isSet reports whether the named flag was explicitly given.
func (c *cliConfig) isSet(name string) bool { return c.set[name] }

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemsearch: ")

	var cfg cliConfig
	flag.StringVar(&cfg.in, "in", "", "catalog CSV file, directory or glob (gemembed format)")
	flag.IntVar(&cfg.synthetic, "synthetic", 0, "generate an N-column synthetic catalog instead of reading -in")
	flag.StringVar(&cfg.catalogDir, "catalog", "", "search the embeddings recorded in a gemserve catalog store directory (no model, no fitting)")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed (corpus, EM and index levels)")
	flag.IntVar(&cfg.components, "components", 50, "GMM components (m)")
	flag.IntVar(&cfg.restarts, "restarts", 3, "EM restarts")
	flag.IntVar(&cfg.subsample, "subsample", 8000, "cap on stacked values used to fit the GMM (0 = all)")
	flag.IntVar(&cfg.workers, "workers", 0, "worker-pool width shared by the embedder and the index build (0 = GOMAXPROCS; results are identical for every value)")
	flag.StringVar(&cfg.metricSpec, "metric", "cosine", "index distance: cosine|l2")
	flag.StringVar(&cfg.precSpec, "precision", "float64", "index scan precision: float64|float32|int8 (reduced tiers re-rank exactly)")
	flag.IntVar(&cfg.m, "m", 0, "HNSW M, max neighbours per layer (0 = default 16)")
	flag.IntVar(&cfg.efc, "ef-construction", 0, "HNSW construction beam width (0 = default 200)")
	flag.IntVar(&cfg.efs, "ef-search", 0, "HNSW search beam width (0 = default 100)")
	flag.IntVar(&cfg.k, "k", 10, "neighbours to retrieve")
	flag.StringVar(&cfg.query, "query", "", "query column: a header name, or @i for the i-th column")
	flag.BoolVar(&cfg.recall, "recall", false, "replay every column as a query and report recall@k vs the exact baseline")
	flag.Float64Var(&cfg.minRecall, "min-recall", 0, "fail unless recall@k reaches this bound (implies -recall)")
	flag.StringVar(&cfg.indexIn, "index-in", "", "load a saved index instead of building one")
	flag.StringVar(&cfg.indexOut, "index-out", "", "save the index after building")
	flag.Parse()
	cfg.set = map[string]bool{}
	flag.Visit(func(f *flag.Flag) { cfg.set[f.Name] = true })

	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(cfg cliConfig, w io.Writer) error {
	metric, err := ann.ParseMetric(cfg.metricSpec)
	if err != nil {
		return err
	}
	prec := ann.Float64
	if cfg.precSpec != "" {
		if prec, err = ann.ParsePrecision(cfg.precSpec); err != nil {
			return err
		}
	}
	if cfg.k < 1 {
		return fmt.Errorf("-k must be positive, got %d", cfg.k)
	}
	// Cross-flag conflicts fail before any fitting: a paper-sized catalog
	// embed takes minutes, and the conflicting flag would otherwise be
	// silently ignored after that work is done.
	if cfg.indexIn != "" {
		// Build-time parameters are baked into a saved graph; accepting
		// them alongside -index-in would silently drop them.
		if cfg.m != 0 || cfg.efc != 0 {
			return fmt.Errorf("-m and -ef-construction apply when building an index; they cannot change one loaded with -index-in")
		}
		if cfg.isSet("precision") {
			return fmt.Errorf("-precision is baked into a saved index at build time; it cannot change one loaded with -index-in")
		}
	}

	var (
		vs      *core.VectorSet
		ds      *table.Dataset
		workers = cfg.workers
	)
	if cfg.catalogDir != "" {
		if cfg.in != "" || cfg.synthetic > 0 {
			return fmt.Errorf("-catalog searches stored embeddings; it cannot be combined with -in or -synthetic")
		}
		// The stored rows are indexed directly: no model is fitted, so fit
		// parameters given explicitly would be silently ignored.
		for _, f := range []string{"components", "restarts", "subsample"} {
			if cfg.isSet(f) {
				return fmt.Errorf("-%s tunes the model fit; -catalog searches stored embeddings without fitting, so it cannot be combined with -%s", f, f)
			}
		}
		if vs, err = loadStoredVectors(cfg.catalogDir, metric, w); err != nil {
			return err
		}
	} else if vs, ds, err = embedCatalog(cfg, metric, w); err != nil {
		return err
	}

	p := pool.New(workers)
	idx, err := obtainIndex(cfg, metric, prec, p, vs, w)
	if err != nil {
		return err
	}
	if cfg.indexOut != "" {
		if err := saveIndex(idx, cfg.indexOut); err != nil {
			return err
		}
		fmt.Fprintf(w, "index saved to %s\n", cfg.indexOut)
	}

	if cfg.query != "" {
		if err := runQuery(cfg, idx, vs, ds, w); err != nil {
			return err
		}
	}
	if cfg.recall || cfg.minRecall > 0 {
		if err := runRecall(cfg, idx, metric, vs, w); err != nil {
			return err
		}
	}
	return nil
}

// embedCatalog loads the -in/-synthetic catalog through the shared ingest
// layer, fits a Gem embedder and embeds every column.
func embedCatalog(cfg cliConfig, metric ann.Metric, w io.Writer) (*core.VectorSet, *table.Dataset, error) {
	src, err := catalog.Spec{Path: cfg.in, Synthetic: cfg.synthetic, Seed: cfg.seed}.Source()
	if err != nil {
		return nil, nil, err
	}
	ds, err := src.Load()
	if err != nil {
		return nil, nil, err
	}

	// One Options value carries the worker bound end to end: the embedder's
	// shared pool via GemConfig, and the HNSW build pool in run.
	opts := experiments.Options{
		Seed:           cfg.seed,
		Components:     cfg.components,
		Restarts:       cfg.restarts,
		SubsampleStack: cfg.subsample,
		Workers:        cfg.workers,
	}
	opts.FillDefaults()
	if cfg.subsample <= 0 {
		opts.SubsampleStack = 0 // explicit "fit on everything"
	}
	embedder, err := core.NewEmbedder(opts.GemConfig(core.Distributional|core.Statistical, core.Concatenation))
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	if err := embedder.Fit(ds); err != nil {
		return nil, nil, err
	}
	vs, err := embedder.EmbedVectors(ds, metric)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(w, "embedded %d columns (dim %d) in %.2fs\n",
		len(vs.Vectors), len(vs.Vectors[0]), time.Since(start).Seconds())
	return vs, ds, nil
}

// loadStoredVectors reads the live entries of a gemserve catalog store and
// prepares them for the requested metric the way core.EmbedVectors does
// (the store records raw rows; cosine indexes want them normalized).
func loadStoredVectors(dir string, metric ann.Metric, w io.Writer) (*core.VectorSet, error) {
	fp, entries, err := catalog.Read(dir)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("catalog store %s has no live columns", dir)
	}
	vs := &core.VectorSet{
		Names:   make([]string, len(entries)),
		Vectors: make([][]float64, len(entries)),
	}
	for i, e := range entries {
		vs.Names[i] = e.Name
		if metric == ann.Cosine {
			vs.Vectors[i] = stats.L2Normalize(e.Vec)
		} else {
			vs.Vectors[i] = e.Vec
		}
	}
	fmt.Fprintf(w, "catalog store %s: %d live columns (dim %d, embedder %.12s…)\n",
		dir, len(entries), len(entries[0].Vec), fp)
	return vs, nil
}

// obtainIndex loads -index-in (validating it against the embedded catalog)
// or builds a fresh HNSW graph on the shared pool.
func obtainIndex(cfg cliConfig, metric ann.Metric, prec ann.Precision, p *pool.Pool, vs *core.VectorSet, w io.Writer) (ann.Index, error) {
	if cfg.indexIn != "" {
		f, err := os.Open(cfg.indexIn)
		if err != nil {
			return nil, fmt.Errorf("opening index: %w", err)
		}
		defer f.Close()
		idx, err := ann.Load(f, p)
		if err != nil {
			return nil, err
		}
		// -ef-search is a query-time knob, so it does apply to a loaded
		// index.
		if h, ok := idx.(*ann.HNSW); ok && cfg.efs > 0 {
			h.SetEfSearch(cfg.efs)
		}
		if idx.Metric() != metric {
			return nil, fmt.Errorf("index %s uses metric %s, want %s (pass -metric %s)",
				cfg.indexIn, idx.Metric(), metric, idx.Metric())
		}
		if idx.Len() != len(vs.Vectors) || idx.Dim() != len(vs.Vectors[0]) {
			return nil, fmt.Errorf("index %s holds %d vectors of dim %d, catalog embeds to %d of dim %d — was it built from this catalog and configuration?",
				cfg.indexIn, idx.Len(), idx.Dim(), len(vs.Vectors), len(vs.Vectors[0]))
		}
		fmt.Fprintf(w, "index loaded from %s (%d vectors)\n", cfg.indexIn, idx.Len())
		return idx, nil
	}
	h, err := ann.NewHNSW(ann.HNSWConfig{
		Metric: metric, M: cfg.m, EfConstruction: cfg.efc,
		EfSearch: cfg.efs, Seed: cfg.seed, Precision: prec,
	}, p)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := h.Add(vs.Vectors...); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "hnsw index built in %.2fs (M=%d, efConstruction=%d, precision=%s)\n",
		time.Since(start).Seconds(), h.Config().M, h.Config().EfConstruction, h.Precision())
	return h, nil
}

func saveIndex(idx ann.Index, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating index file: %w", err)
	}
	if err := idx.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing index file: %w", err)
	}
	return nil
}

// resolveQuery maps -query to a column position: "@i" addresses by index,
// anything else is a header name (first match).
func resolveQuery(q string, vs *core.VectorSet) (int, error) {
	if strings.HasPrefix(q, "@") {
		i, err := strconv.Atoi(q[1:])
		if err != nil || i < 0 || i >= len(vs.Vectors) {
			return 0, fmt.Errorf("query %q: want @i with i in [0, %d)", q, len(vs.Vectors))
		}
		return i, nil
	}
	i := vs.Find(q)
	if i < 0 {
		return 0, fmt.Errorf("query column %q not in catalog", q)
	}
	return i, nil
}

// runQuery prints the top-k neighbours of the query column. ds is nil in
// -catalog mode, where no ground-truth types exist.
func runQuery(cfg cliConfig, idx ann.Index, vs *core.VectorSet, ds *table.Dataset, w io.Writer) error {
	qi, err := resolveQuery(cfg.query, vs)
	if err != nil {
		return err
	}
	typeOf := func(i int) string {
		if ds == nil {
			return ""
		}
		return ds.Columns[i].Type
	}
	// k+1 so the query column itself can be dropped from its own result.
	res, err := idx.Search(vs.Vectors[qi], cfg.k+1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ntop %d for column %d (%q, type %q):\n", cfg.k, qi, vs.Names[qi], typeOf(qi))
	fmt.Fprintf(w, "%4s  %8s  %-28s %s\n", "rank", "dist", "column", "type")
	rank := 0
	for _, r := range res {
		if r.ID == qi {
			continue
		}
		rank++
		if rank > cfg.k {
			break
		}
		fmt.Fprintf(w, "%4d  %8.5f  %-28s %s\n", rank, r.Dist, vs.Names[r.ID], typeOf(r.ID))
	}
	return nil
}

// runRecall replays every column as a query against the index and the
// exact baseline via the shared experiments harness, reports recall@k and
// QPS, and enforces -min-recall.
func runRecall(cfg cliConfig, idx ann.Index, metric ann.Metric, vs *core.VectorSet, w io.Writer) error {
	flat := ann.NewFlat(metric)
	if err := flat.Add(vs.Vectors...); err != nil {
		return err
	}
	recall, flatSecs, hnswSecs, err := experiments.ReplayQueries(flat, idx, vs.Vectors, cfg.k)
	if err != nil {
		return err
	}
	n := float64(len(vs.Vectors))
	fmt.Fprintf(w, "\nrecall@%d vs flat over %d queries: %.4f\n", cfg.k, len(vs.Vectors), recall)
	fmt.Fprintf(w, "flat %.0f qps, hnsw %.0f qps (%.1fx)\n", n/flatSecs, n/hnswSecs, flatSecs/hnswSecs)
	if cfg.minRecall > 0 && recall < cfg.minRecall {
		return fmt.Errorf("recall@%d = %.4f below required %.4f", cfg.k, recall, cfg.minRecall)
	}
	return nil
}
