package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/catalog"
)

// tinyCfg embeds a small synthetic catalog fast; recall numbers are about
// index-vs-index agreement, so the small mixture is fine.
func tinyCfg() cliConfig {
	return cliConfig{
		synthetic:  120,
		seed:       1,
		components: 8,
		restarts:   1,
		subsample:  2000,
		workers:    2,
		metricSpec: "cosine",
		k:          10,
	}
}

func TestRunSyntheticRecallGate(t *testing.T) {
	cfg := tinyCfg()
	cfg.recall = true
	cfg.minRecall = 0.95
	cfg.efs = 256 // beam wider than the catalog: exhaustive, recall 1.0
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"embedded 120 columns", "hnsw index built", "recall@10", "1.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMinRecallFails(t *testing.T) {
	cfg := tinyCfg()
	cfg.minRecall = 1.1 // unreachable: must fail after reporting
	var buf bytes.Buffer
	err := run(cfg, &buf)
	if err == nil || !strings.Contains(err.Error(), "below required") {
		t.Fatalf("want min-recall failure, got %v", err)
	}
}

func TestRunQueryByNameAndIndex(t *testing.T) {
	cfg := tinyCfg()
	cfg.query = "@3"
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "top 10 for column 3") {
		t.Errorf("output missing query header:\n%s", out)
	}
	// The result table lists k ranked rows and never the query itself.
	if strings.Count(out, "\n   ") == 0 || strings.Contains(out, "rank 0") {
		t.Errorf("unexpected result table:\n%s", out)
	}

	cfg.query = "no_such_column"
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "not in catalog") {
		t.Errorf("missing-column query err = %v", err)
	}
	cfg.query = "@9999"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Error("out-of-range @i query accepted")
	}
}

func TestRunIndexSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.idx")

	cfg := tinyCfg()
	cfg.indexOut = path
	cfg.query = "@0"
	var built bytes.Buffer
	if err := run(cfg, &built); err != nil {
		t.Fatalf("build+save: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("index file: %v", err)
	}

	cfg2 := tinyCfg()
	cfg2.indexIn = path
	cfg2.query = "@0"
	var loaded bytes.Buffer
	if err := run(cfg2, &loaded); err != nil {
		t.Fatalf("load+query: %v", err)
	}
	if !strings.Contains(loaded.String(), "index loaded from") {
		t.Errorf("load path not taken:\n%s", loaded.String())
	}
	// Same catalog, same configuration: the ranked table must be identical
	// whether the index was just built or loaded from disk.
	tableOf := func(s string) string {
		i := strings.Index(s, "top 10")
		if i < 0 {
			t.Fatalf("no result table in:\n%s", s)
		}
		return s[i:]
	}
	if tableOf(built.String()) != tableOf(loaded.String()) {
		t.Errorf("loaded index ranks differently:\nbuilt:\n%s\nloaded:\n%s", built.String(), loaded.String())
	}

	// A mismatched catalog must be rejected.
	cfg3 := tinyCfg()
	cfg3.synthetic = 60
	cfg3.indexIn = path
	if err := run(cfg3, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "was it built from this catalog") {
		t.Errorf("mismatched catalog err = %v", err)
	}
	// A mismatched metric must be rejected.
	cfg4 := tinyCfg()
	cfg4.indexIn = path
	cfg4.metricSpec = "l2"
	if err := run(cfg4, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "metric") {
		t.Errorf("mismatched metric err = %v", err)
	}
	// Build-time flags conflict with -index-in; the query-time -ef-search
	// applies to the loaded index (wide beam: recall gate must hold).
	cfg5 := tinyCfg()
	cfg5.indexIn = path
	cfg5.m = 8
	if err := run(cfg5, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "cannot change one loaded") {
		t.Errorf("build-flag-with-index-in err = %v", err)
	}
	cfg6 := tinyCfg()
	cfg6.indexIn = path
	cfg6.efs = 256
	cfg6.recall = true
	cfg6.minRecall = 1.0
	if err := run(cfg6, &bytes.Buffer{}); err != nil {
		t.Errorf("ef-search on loaded index: %v", err)
	}
}

// TestRunFlagConflicts: combinations where one flag would silently
// override or ignore another are rejected up front, before any fitting.
// cfg.set simulates flags given explicitly on the command line.
func TestRunFlagConflicts(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  cliConfig
		want string // substring of the expected error
	}{
		{
			name: "catalog+components",
			cfg: cliConfig{catalogDir: "store", metricSpec: "cosine", k: 1,
				components: 25, set: map[string]bool{"components": true}},
			want: "-components tunes the model fit",
		},
		{
			name: "catalog+restarts",
			cfg: cliConfig{catalogDir: "store", metricSpec: "cosine", k: 1,
				restarts: 5, set: map[string]bool{"restarts": true}},
			want: "-restarts tunes the model fit",
		},
		{
			name: "catalog+subsample",
			cfg: cliConfig{catalogDir: "store", metricSpec: "cosine", k: 1,
				subsample: 100, set: map[string]bool{"subsample": true}},
			want: "-subsample tunes the model fit",
		},
		{
			name: "catalog+synthetic",
			cfg: cliConfig{catalogDir: "store", metricSpec: "cosine", k: 1,
				synthetic: 100},
			want: "cannot be combined with -in or -synthetic",
		},
		{
			name: "in+synthetic",
			cfg: cliConfig{in: "x.csv", synthetic: 100, metricSpec: "cosine",
				k: 1},
			want: "mutually exclusive",
		},
		{
			name: "index-in+precision",
			cfg: cliConfig{synthetic: 100, metricSpec: "cosine", k: 1,
				indexIn: "x.idx", precSpec: "int8",
				set: map[string]bool{"precision": true}},
			want: "cannot change one loaded with -index-in",
		},
		{
			name: "index-in+m",
			cfg: cliConfig{synthetic: 100, metricSpec: "cosine", k: 1,
				indexIn: "x.idx", m: 8},
			want: "cannot change one loaded with -index-in",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.cfg, &bytes.Buffer{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
	// Defaults are not conflicts: the same values without cfg.set pass the
	// conflict gate (and fail later on the nonexistent store instead).
	cfg := cliConfig{catalogDir: "no-such-store", metricSpec: "cosine", k: 1,
		components: 25}
	err := run(cfg, &bytes.Buffer{})
	if err == nil || strings.Contains(err.Error(), "tunes the model fit") {
		t.Errorf("default-valued flag treated as conflict: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	cfg := tinyCfg()
	cfg.metricSpec = "hamming"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Error("bad metric accepted")
	}
	cfg = tinyCfg()
	cfg.k = 0
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Error("k=0 accepted")
	}
	cfg = tinyCfg()
	cfg.synthetic = 0
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "need a catalog") {
		t.Errorf("no-catalog err = %v", err)
	}
	cfg = tinyCfg()
	cfg.in = "x.csv"
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("in+synthetic err = %v", err)
	}
}

// TestRunCatalogStoreMode: gemsearch -catalog searches the embeddings a
// gemserve store recorded, without a model or any fitting.
func TestRunCatalogStoreMode(t *testing.T) {
	dir := t.TempDir()
	st, err := catalog.Open(dir, "model-fp")
	if err != nil {
		t.Fatal(err)
	}
	// Three tight neighbours and one outlier, recorded as raw rows the way
	// gemserve journals them.
	vecs := map[string][]float64{
		"price_a": {1, 0, 0.1},
		"price_b": {1, 0.02, 0.1},
		"price_c": {0.9, 0, 0.12},
		"year":    {-5, 9, 2},
	}
	for _, name := range []string{"price_a", "price_b", "price_c", "year"} {
		var key catalog.Key
		copy(key[:], name)
		op := catalog.Op{Kind: catalog.OpAdd, Entry: catalog.Entry{Key: key, Name: name, Vec: vecs[name]}}
		if err := st.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := cliConfig{
		catalogDir: dir,
		metricSpec: "cosine",
		k:          2,
		query:      "price_a",
		recall:     true,
		minRecall:  1.0,
		efs:        64,
	}
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"4 live columns", "price_b", "recall@2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(strings.SplitN(out, "rank", 2)[1], "year") {
		t.Errorf("outlier ranked into top-2:\n%s", out)
	}

	// Mutual exclusion with the embedding sources.
	bad := tinyCfg()
	bad.catalogDir = dir
	if err := run(bad, &buf); err == nil || !strings.Contains(err.Error(), "cannot be combined") {
		t.Errorf("-catalog with -synthetic: got %v", err)
	}

	// An empty store is a clear error, not a zero-column index.
	empty := t.TempDir()
	es, err := catalog.Open(empty, "")
	if err != nil {
		t.Fatal(err)
	}
	es.Close()
	bad2 := cliConfig{catalogDir: empty, metricSpec: "cosine", k: 1, query: "x"}
	if err := run(bad2, &buf); err == nil || !strings.Contains(err.Error(), "no live columns") {
		t.Errorf("empty store: got %v", err)
	}
}
