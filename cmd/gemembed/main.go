// Command gemembed computes Gem embeddings for the numeric columns of a CSV
// catalog and writes them as CSV or JSON.
//
// The input format is a header row followed by data rows; only columns whose
// cells all parse as numbers are embedded. An optional second row prefixed
// with "#type:" carries ground-truth labels (ignored by embedding, copied to
// the output for convenience). Input resolution goes through the shared
// internal/catalog ingest layer, so -in also accepts a directory or glob of
// CSVs, and -synthetic generates the standard synthetic catalog.
//
// Usage:
//
//	gemembed -in data.csv -components 50 -features D,S -format csv
//	gemembed -in 'lake/*.csv' -format json
//	gemembed -synthetic 200 -format csv
//	cat data.csv | gemembed -features D,S,C -composition concat -format json
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/gem-embeddings/gem/internal/catalog"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/table"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemembed: ")

	var (
		in          = flag.String("in", "", "input CSV file, directory or glob (default stdin)")
		synthetic   = flag.Int("synthetic", 0, "embed an N-column synthetic catalog instead of reading input")
		outPath     = flag.String("out", "", "output file (default stdout)")
		components  = flag.Int("components", 50, "GMM components (m)")
		restarts    = flag.Int("restarts", 10, "EM restarts")
		seed        = flag.Int64("seed", 1, "random seed")
		featureSpec = flag.String("features", "D,S", "feature families: any of D,S,C (comma separated)")
		composition = flag.String("composition", "concat", "composition for C: concat|agg|ae")
		format      = flag.String("format", "csv", "output format: csv|json")
		subsample   = flag.Int("subsample", 0, "cap on stacked values used to fit the GMM (0 = all)")
		workers     = flag.Int("workers", 0, "worker-pool width shared by column fan-out and EM (0 = GOMAXPROCS; output is identical for every value)")
	)
	flag.Parse()

	feats, err := parseFeatures(*featureSpec)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := parseComposition(*composition)
	if err != nil {
		log.Fatal(err)
	}

	src, err := catalog.Spec{Path: *in, Synthetic: *synthetic, Seed: *seed, Stdin: os.Stdin}.Source()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := src.Load()
	if err != nil {
		log.Fatalf("reading input: %v", err)
	}

	embedder, err := core.NewEmbedder(core.Config{
		Components:     *components,
		Restarts:       *restarts,
		Seed:           *seed,
		Features:       feats,
		Composition:    comp,
		SubsampleStack: *subsample,
		Workers:        *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	emb, err := embedder.FitEmbed(ds)
	if err != nil {
		log.Fatalf("embedding: %v", err)
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatalf("creating output: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("closing output: %v", err)
			}
		}()
		w = f
	}

	switch *format {
	case "csv":
		err = writeCSV(w, ds, emb)
	case "json":
		err = writeJSON(w, ds, emb)
	default:
		err = fmt.Errorf("unknown format %q (want csv|json)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func parseFeatures(spec string) (core.Features, error) {
	var feats core.Features
	for _, part := range strings.Split(spec, ",") {
		switch strings.ToUpper(strings.TrimSpace(part)) {
		case "D":
			feats |= core.Distributional
		case "S":
			feats |= core.Statistical
		case "C":
			feats |= core.Contextual
		case "":
		default:
			return 0, fmt.Errorf("unknown feature %q (want D, S or C)", part)
		}
	}
	if feats == 0 {
		return 0, fmt.Errorf("no features selected")
	}
	return feats, nil
}

func parseComposition(s string) (core.Composition, error) {
	switch strings.ToLower(s) {
	case "concat", "concatenation":
		return core.Concatenation, nil
	case "agg", "aggregation":
		return core.Aggregation, nil
	case "ae", "autoencoder":
		return core.AE, nil
	default:
		return 0, fmt.Errorf("unknown composition %q (want concat|agg|ae)", s)
	}
}

func writeCSV(w io.Writer, ds *table.Dataset, emb [][]float64) error {
	cw := csv.NewWriter(w)
	header := []string{"column", "type"}
	for j := range emb[0] {
		header = append(header, fmt.Sprintf("e%d", j))
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("writing header: %w", err)
	}
	for i, col := range ds.Columns {
		row := []string{col.Name, col.Type}
		for _, v := range emb[i] {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

type jsonEmbedding struct {
	Column    string    `json:"column"`
	Type      string    `json:"type,omitempty"`
	Embedding []float64 `json:"embedding"`
}

func writeJSON(w io.Writer, ds *table.Dataset, emb [][]float64) error {
	out := make([]jsonEmbedding, len(ds.Columns))
	for i, col := range ds.Columns {
		out[i] = jsonEmbedding{Column: col.Name, Type: col.Type, Embedding: emb[i]}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
