package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/table"
)

func TestParseFeatures(t *testing.T) {
	tests := []struct {
		in      string
		want    core.Features
		wantErr bool
	}{
		{"D", core.Distributional, false},
		{"D,S", core.Distributional | core.Statistical, false},
		{"d,s,c", core.Distributional | core.Statistical | core.Contextual, false},
		{" D , C ", core.Distributional | core.Contextual, false},
		{"", 0, true},
		{"X", 0, true},
		{"D,X", 0, true},
	}
	for _, tc := range tests {
		got, err := parseFeatures(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseFeatures(%q): want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseFeatures(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseFeatures(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseComposition(t *testing.T) {
	tests := []struct {
		in      string
		want    core.Composition
		wantErr bool
	}{
		{"concat", core.Concatenation, false},
		{"concatenation", core.Concatenation, false},
		{"agg", core.Aggregation, false},
		{"AE", core.AE, false},
		{"autoencoder", core.AE, false},
		{"bogus", 0, true},
	}
	for _, tc := range tests {
		got, err := parseComposition(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseComposition(%q): want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseComposition(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseComposition(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func testDataset() (*table.Dataset, [][]float64) {
	ds := &table.Dataset{Name: "t", Columns: []table.Column{
		{Name: "a", Type: "ta", Values: []float64{1, 2}},
		{Name: "b", Type: "tb", Values: []float64{3, 4}},
	}}
	emb := [][]float64{{0.5, 0.5}, {0.25, 0.75}}
	return ds, emb
}

func TestWriteCSV(t *testing.T) {
	ds, emb := testDataset()
	var buf bytes.Buffer
	if err := writeCSV(&buf, ds, emb); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("got %d rows, want 3", len(records))
	}
	if records[0][0] != "column" || records[0][2] != "e0" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][0] != "a" || records[1][1] != "ta" || records[1][2] != "0.5" {
		t.Errorf("row 1 = %v", records[1])
	}
}

func TestWriteJSON(t *testing.T) {
	ds, emb := testDataset()
	var buf bytes.Buffer
	if err := writeJSON(&buf, ds, emb); err != nil {
		t.Fatal(err)
	}
	var out []jsonEmbedding
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].Column != "b" || out[1].Embedding[1] != 0.75 {
		t.Errorf("json = %+v", out)
	}
}

func TestEndToEndThroughReadCSV(t *testing.T) {
	// The CSV the tool consumes, embedded with a tiny config, must produce
	// one embedding per numeric column.
	csvText := "price,name,qty\n#type:cost,#type:label,#type:count\n9.9,x,5\n12.5,y,7\n11.1,z,6\n"
	ds, err := table.ReadCSV(strings.NewReader(csvText), "t")
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEmbedder(core.Config{Components: 2, Restarts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	emb, err := e.FitEmbed(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb) != 2 {
		t.Fatalf("got %d embeddings, want 2 (name column is non-numeric)", len(emb))
	}
	var buf bytes.Buffer
	if err := writeCSV(&buf, ds, emb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cost") {
		t.Error("type labels should survive to the output")
	}
}
