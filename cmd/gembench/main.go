// Command gembench regenerates the paper's tables and figures on the
// synthetic benchmark corpora.
//
// Usage:
//
//	gembench -exp all                 # every table and figure
//	gembench -exp table2 -scale 1.0   # paper-sized numeric-only comparison
//	gembench -exp fig4 -seed 7
//
// Experiments: table1, table2, table3, table4, fig3, fig4, fig5, search,
// serve, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"github.com/gem-embeddings/gem/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gembench: ")

	var (
		exp        = flag.String("exp", "all", "experiment to run: table1|table2|table3|table4|fig3|fig4|fig5|search|serve|all")
		seed       = flag.Int64("seed", 1, "random seed for corpora and models")
		scale      = flag.Float64("scale", 0.25, "corpus scale (1.0 = paper-sized)")
		components = flag.Int("components", 50, "Gem GMM components (m)")
		restarts   = flag.Int("restarts", 3, "EM restarts")
		reps       = flag.Int("reps", 3, "timed repetitions per point (fig5)")
		workers    = flag.Int("workers", 0, "worker-pool width shared by column fan-out and EM (0 = GOMAXPROCS; results are identical for every value)")
		out        = flag.String("out", "", "optional output file (default stdout)")
	)
	flag.Parse()

	opts := experiments.Options{
		Seed:       *seed,
		Scale:      *scale,
		Components: *components,
		Restarts:   *restarts,
		Workers:    *workers,
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("creating %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("closing %s: %v", *out, err)
			}
		}()
		w = f
	}

	if err := run(w, strings.ToLower(*exp), opts, *reps); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, exp string, opts experiments.Options, reps int) error {
	all := exp == "all"
	ran := false

	if all || exp == "table1" {
		rows, err := experiments.Table1(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.RenderTable1(rows))
		ran = true
	}
	if all || exp == "table2" {
		res, err := experiments.Table2(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || exp == "table3" {
		res, err := experiments.Table3(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || exp == "table4" {
		res, err := experiments.Table4(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || exp == "fig3" {
		res, err := experiments.Figure3(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || exp == "fig4" {
		res, err := experiments.Figure4(opts, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || exp == "fig5" {
		res, err := experiments.Figure5(opts, nil, reps)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || exp == "search" {
		res, err := experiments.SearchEval(experiments.SearchOptions{Options: opts})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || exp == "serve" {
		res, err := experiments.ServeEval(experiments.ServeOptions{Options: opts})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want table1|table2|table3|table4|fig3|fig4|fig5|search|serve|all)", exp)
	}
	return nil
}
