// Command gembench regenerates the paper's tables and figures on the
// synthetic benchmark corpora.
//
// Usage:
//
//	gembench -exp all                 # every table and figure
//	gembench -exp table2 -scale 1.0   # paper-sized numeric-only comparison
//	gembench -exp fig4 -seed 7
//	gembench -exp search,serve -json BENCH_10.json
//	gembench -exp search,serve -json fresh.json -baseline BENCH_10.json
//
// Experiments: table1, table2, table3, table4, fig3, fig4, fig5, search,
// serve, all — or a comma-separated list. -json additionally writes the
// machine-readable results (QPS, recall@k, latency percentiles) of the
// search and serve experiments; CI uploads that file as the BENCH_10
// perf-trajectory artifact. -baseline diffs the fresh results against a
// previously written report and fails on regressions (recall drops beyond
// tolerance, order-of-magnitude throughput collapses, missing sections).
// The search experiment sweeps the index precision tiers listed in
// -precision against one exact float64 ground truth.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gembench: ")

	var (
		exp        = flag.String("exp", "all", "experiment(s) to run, comma separated: table1|table2|table3|table4|fig3|fig4|fig5|search|serve|all")
		seed       = flag.Int64("seed", 1, "random seed for corpora and models")
		scale      = flag.Float64("scale", 0.25, "corpus scale (1.0 = paper-sized)")
		components = flag.Int("components", 50, "Gem GMM components (m)")
		restarts   = flag.Int("restarts", 3, "EM restarts")
		reps       = flag.Int("reps", 3, "timed repetitions per point (fig5)")
		workers    = flag.Int("workers", 0, "worker-pool width shared by column fan-out and EM (0 = GOMAXPROCS; results are identical for every value)")
		out        = flag.String("out", "", "optional output file (default stdout)")
		jsonOut    = flag.String("json", "", "write machine-readable search/serve/load results to this file")
		baseline   = flag.String("baseline", "", "diff the fresh search/serve/load results against this bench report and fail on regressions")
		precList   = flag.String("precision", "", "comma-separated index scan precisions the search experiment sweeps (default float64,float32,int8)")
		loadShards = flag.Int("load-shards", 0, "catalog shard count for the load experiment (0 = default 2)")
		loadOps    = flag.Int("load-ops", 0, "closed-loop op count for the load experiment (0 = scale-derived)")
		sloP50     = flag.Float64("slo-p50-ms", 0, "load experiment search p50 ceiling in ms (0 = unchecked)")
		sloP95     = flag.Float64("slo-p95-ms", 0, "load experiment search p95 ceiling in ms (0 = unchecked)")
		sloP99     = flag.Float64("slo-p99-ms", 0, "load experiment search p99 ceiling in ms (0 = unchecked)")
	)
	flag.Parse()

	opts := experiments.Options{
		Seed:       *seed,
		Scale:      *scale,
		Components: *components,
		Restarts:   *restarts,
		Workers:    *workers,
	}
	precisions, err := parsePrecisions(*precList)
	if err != nil {
		log.Fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("creating %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("closing %s: %v", *out, err)
			}
		}()
		w = f
	}

	// Validate -json/-baseline against the selection BEFORE running
	// anything: a paper-sized experiment can take hours, and failing
	// afterwards would throw that work away. The baseline file is read up
	// front for the same reason.
	if (*jsonOut != "" || *baseline != "") && !selectsReporting(strings.ToLower(*exp)) {
		log.Fatalf("-json and -baseline need a reporting experiment: add search and/or serve to -exp %s", *exp)
	}
	var base *experiments.BenchReport
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			log.Fatalf("opening baseline: %v", err)
		}
		base, err = experiments.ReadBenchReport(f)
		f.Close()
		if err != nil {
			log.Fatalf("reading baseline %s: %v", *baseline, err)
		}
	}
	loadOpts := experiments.LoadOptions{
		Options: opts,
		Shards:  *loadShards,
		Ops:     *loadOps,
		SLO:     experiments.LoadSLO{P50Ms: *sloP50, P95Ms: *sloP95, P99Ms: *sloP99},
	}
	report, err := run(w, strings.ToLower(*exp), opts, *reps, precisions, loadOpts)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatalf("creating %s: %v", *jsonOut, err)
		}
		err = report.Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("writing %s: %v", *jsonOut, err)
		}
	}
	if base != nil {
		if violations := experiments.CompareBenchReports(base, report); len(violations) > 0 {
			for _, v := range violations {
				log.Printf("regression vs %s: %s", *baseline, v)
			}
			log.Fatalf("%d regression(s) against baseline %s", len(violations), *baseline)
		}
		fmt.Fprintf(w, "no regressions against baseline %s\n", *baseline)
	}
}

// parsePrecisions parses the -precision sweep list; empty means the
// SearchOptions default (all tiers).
func parsePrecisions(spec string) ([]ann.Precision, error) {
	if spec == "" {
		return nil, nil
	}
	var out []ann.Precision
	for _, part := range strings.Split(spec, ",") {
		p, err := ann.ParsePrecision(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// experimentNames is the single authoritative list of experiments; the
// selection map, the error messages and the -json compatibility check all
// derive from it so a new experiment is added in exactly one place (plus
// its run branch).
var experimentNames = []string{
	"table1", "table2", "table3", "table4",
	"fig3", "fig4", "fig5", "search", "serve", "load",
}

// reportingExperiments fill the machine-readable -json report.
var reportingExperiments = map[string]bool{"search": true, "serve": true, "load": true}

func wantExperiments() string {
	return strings.Join(experimentNames, "|") + "|all"
}

// selectsReporting reports whether the -exp selection includes an
// experiment that fills the machine-readable report.
func selectsReporting(exp string) bool {
	for _, part := range strings.Split(exp, ",") {
		name := strings.TrimSpace(part)
		if name == "all" || reportingExperiments[name] {
			return true
		}
	}
	return false
}

// run executes the selected experiments (a comma-separated list, or
// "all") and returns the machine-readable report of those that have one.
func run(w io.Writer, exp string, opts experiments.Options, reps int, precisions []ann.Precision, loadOpts experiments.LoadOptions) (*experiments.BenchReport, error) {
	report := &experiments.BenchReport{
		Schema:  experiments.BenchSchemaVersion,
		Seed:    opts.Seed,
		Scale:   opts.Scale,
		Workers: opts.Workers,
	}
	selected := make(map[string]bool)
	for _, part := range strings.Split(exp, ",") {
		if part = strings.TrimSpace(part); part != "" {
			selected[part] = true
		}
	}
	all := selected["all"]
	ran := false

	known := map[string]bool{"all": true}
	for _, name := range experimentNames {
		known[name] = true
	}
	for name := range selected {
		if !known[name] {
			return nil, fmt.Errorf("unknown experiment %q (want %s, comma separated)", name, wantExperiments())
		}
	}

	if all || selected["table1"] {
		rows, err := experiments.Table1(opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, experiments.RenderTable1(rows))
		ran = true
	}
	if all || selected["table2"] {
		res, err := experiments.Table2(opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || selected["table3"] {
		res, err := experiments.Table3(opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || selected["table4"] {
		res, err := experiments.Table4(opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || selected["fig3"] {
		res, err := experiments.Figure3(opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || selected["fig4"] {
		res, err := experiments.Figure4(opts, nil)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || selected["fig5"] {
		res, err := experiments.Figure5(opts, nil, reps)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || selected["search"] {
		res, err := experiments.SearchEval(experiments.SearchOptions{Options: opts, Precisions: precisions})
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		report.Search = experiments.NewSearchReport(res)
		ran = true
	}
	if all || selected["serve"] {
		res, err := experiments.ServeEval(experiments.ServeOptions{Options: opts})
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		report.Serve = experiments.NewServeReport(res)
		ran = true
	}
	if all || selected["load"] {
		loadOpts.Options = opts
		res, err := experiments.LoadEval(loadOpts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		report.Load = experiments.NewLoadReport(res)
		ran = true
	}
	if !ran {
		return nil, fmt.Errorf("no experiment selected (want %s, comma separated)", wantExperiments())
	}
	return report, nil
}
