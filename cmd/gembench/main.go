// Command gembench regenerates the paper's tables and figures on the
// synthetic benchmark corpora.
//
// Usage:
//
//	gembench -exp all                 # every table and figure
//	gembench -exp table2 -scale 1.0   # paper-sized numeric-only comparison
//	gembench -exp fig4 -seed 7
//	gembench -exp search,serve -json BENCH_5.json
//
// Experiments: table1, table2, table3, table4, fig3, fig4, fig5, search,
// serve, all — or a comma-separated list. -json additionally writes the
// machine-readable results (QPS, recall@k, latency percentiles) of the
// search and serve experiments; CI uploads that file as the BENCH_5.json
// perf-trajectory artifact.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"github.com/gem-embeddings/gem/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gembench: ")

	var (
		exp        = flag.String("exp", "all", "experiment(s) to run, comma separated: table1|table2|table3|table4|fig3|fig4|fig5|search|serve|all")
		seed       = flag.Int64("seed", 1, "random seed for corpora and models")
		scale      = flag.Float64("scale", 0.25, "corpus scale (1.0 = paper-sized)")
		components = flag.Int("components", 50, "Gem GMM components (m)")
		restarts   = flag.Int("restarts", 3, "EM restarts")
		reps       = flag.Int("reps", 3, "timed repetitions per point (fig5)")
		workers    = flag.Int("workers", 0, "worker-pool width shared by column fan-out and EM (0 = GOMAXPROCS; results are identical for every value)")
		out        = flag.String("out", "", "optional output file (default stdout)")
		jsonOut    = flag.String("json", "", "write machine-readable search/serve results (BENCH_5.json format) to this file")
	)
	flag.Parse()

	opts := experiments.Options{
		Seed:       *seed,
		Scale:      *scale,
		Components: *components,
		Restarts:   *restarts,
		Workers:    *workers,
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("creating %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("closing %s: %v", *out, err)
			}
		}()
		w = f
	}

	// Validate -json against the selection BEFORE running anything: a
	// paper-sized experiment can take hours, and failing afterwards would
	// throw that work away.
	if *jsonOut != "" && !selectsReporting(strings.ToLower(*exp)) {
		log.Fatalf("-json needs a reporting experiment: add search and/or serve to -exp %s", *exp)
	}
	report, err := run(w, strings.ToLower(*exp), opts, *reps)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatalf("creating %s: %v", *jsonOut, err)
		}
		err = report.Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("writing %s: %v", *jsonOut, err)
		}
	}
}

// experimentNames is the single authoritative list of experiments; the
// selection map, the error messages and the -json compatibility check all
// derive from it so a new experiment is added in exactly one place (plus
// its run branch).
var experimentNames = []string{
	"table1", "table2", "table3", "table4",
	"fig3", "fig4", "fig5", "search", "serve",
}

// reportingExperiments fill the machine-readable -json report.
var reportingExperiments = map[string]bool{"search": true, "serve": true}

func wantExperiments() string {
	return strings.Join(experimentNames, "|") + "|all"
}

// selectsReporting reports whether the -exp selection includes an
// experiment that fills the machine-readable report.
func selectsReporting(exp string) bool {
	for _, part := range strings.Split(exp, ",") {
		name := strings.TrimSpace(part)
		if name == "all" || reportingExperiments[name] {
			return true
		}
	}
	return false
}

// run executes the selected experiments (a comma-separated list, or
// "all") and returns the machine-readable report of those that have one.
func run(w io.Writer, exp string, opts experiments.Options, reps int) (*experiments.BenchReport, error) {
	report := &experiments.BenchReport{
		Schema:  experiments.BenchSchemaVersion,
		Seed:    opts.Seed,
		Scale:   opts.Scale,
		Workers: opts.Workers,
	}
	selected := make(map[string]bool)
	for _, part := range strings.Split(exp, ",") {
		if part = strings.TrimSpace(part); part != "" {
			selected[part] = true
		}
	}
	all := selected["all"]
	ran := false

	known := map[string]bool{"all": true}
	for _, name := range experimentNames {
		known[name] = true
	}
	for name := range selected {
		if !known[name] {
			return nil, fmt.Errorf("unknown experiment %q (want %s, comma separated)", name, wantExperiments())
		}
	}

	if all || selected["table1"] {
		rows, err := experiments.Table1(opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, experiments.RenderTable1(rows))
		ran = true
	}
	if all || selected["table2"] {
		res, err := experiments.Table2(opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || selected["table3"] {
		res, err := experiments.Table3(opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || selected["table4"] {
		res, err := experiments.Table4(opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || selected["fig3"] {
		res, err := experiments.Figure3(opts)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || selected["fig4"] {
		res, err := experiments.Figure4(opts, nil)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || selected["fig5"] {
		res, err := experiments.Figure5(opts, nil, reps)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		ran = true
	}
	if all || selected["search"] {
		res, err := experiments.SearchEval(experiments.SearchOptions{Options: opts})
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		report.Search = experiments.NewSearchReport(res)
		ran = true
	}
	if all || selected["serve"] {
		res, err := experiments.ServeEval(experiments.ServeOptions{Options: opts})
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, res)
		report.Serve = experiments.NewServeReport(res)
		ran = true
	}
	if !ran {
		return nil, fmt.Errorf("no experiment selected (want %s, comma separated)", wantExperiments())
	}
	return report, nil
}
