package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/experiments"
)

func tinyOpts() experiments.Options {
	return experiments.Options{
		Seed:           1,
		Scale:          0.04,
		Components:     8,
		Restarts:       2,
		SubsampleStack: 2000,
		HeaderDim:      48,
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	_, err := run(&buf, "bogus", tinyOpts(), 1, nil, experiments.LoadOptions{})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("want unknown-experiment error, got %v", err)
	}
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, "table1", tinyOpts(), 1, nil, experiments.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "GDS", "WDC", "Sato Tables", "Git Tables"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable2(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, "table2", tinyOpts(), 1, nil, experiments.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "Gem (D+S)", "Squashing_GMM", "KS statistic"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig3(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, "fig3", tinyOpts(), 1, nil, experiments.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "D+C+S") {
		t.Errorf("output missing Figure 3 content:\n%s", out)
	}
}

func TestRunServe(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, "serve", tinyOpts(), 1, nil, experiments.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"serve eval", "qps", "mean batch"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunLoad(t *testing.T) {
	var buf bytes.Buffer
	lo := experiments.LoadOptions{Columns: 40, Ops: 120, Clients: 4, Shards: 2}
	report, err := run(&buf, "load", tinyOpts(), 1, nil, lo)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"load eval", "2 shards", "closed loop", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if report.Load == nil || report.Load.QPS <= 0 || report.Load.Shards != 2 {
		t.Errorf("load report not filled: %+v", report.Load)
	}
	if report.Load.Searches+report.Load.Adds+report.Load.Removes != 120 {
		t.Errorf("load op counts: %+v", report.Load)
	}
}

func TestRunSearch(t *testing.T) {
	var buf bytes.Buffer
	report, err := run(&buf, "search", tinyOpts(), 1, nil, experiments.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ANN search", "recall@10", "hnsw build", "[float64]", "[float32]", "[int8]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if got := len(report.Search.Tiers); got != 3 {
		t.Errorf("default sweep produced %d tiers, want 3", got)
	}
}

// TestRunSearchPrecisionSubset: -precision restricts the sweep.
func TestRunSearchPrecisionSubset(t *testing.T) {
	precs, err := parsePrecisions("f32")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	report, err := run(&buf, "search", tinyOpts(), 1, precs, experiments.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Search.Tiers) != 1 || report.Search.Tiers[0].Precision != "float32" {
		t.Errorf("tiers = %+v, want single float32", report.Search.Tiers)
	}
	if strings.Contains(buf.String(), "[int8]") {
		t.Error("restricted sweep still ran the int8 tier")
	}
}

func TestParsePrecisions(t *testing.T) {
	if got, err := parsePrecisions(""); err != nil || got != nil {
		t.Errorf("empty spec: %v, %v", got, err)
	}
	got, err := parsePrecisions("float64, int8")
	if err != nil || len(got) != 2 {
		t.Fatalf("parse: %v, %v", got, err)
	}
	if _, err := parsePrecisions("float64,bogus"); err == nil {
		t.Error("bogus precision: want error")
	}
}

// TestRunCommaListAndReport: a comma-separated experiment list runs each
// entry once and fills the machine-readable report for search and serve.
func TestRunCommaListAndReport(t *testing.T) {
	var buf bytes.Buffer
	report, err := run(&buf, "search,serve", tinyOpts(), 1, nil, experiments.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ANN search") || !strings.Contains(out, "serve eval") {
		t.Errorf("list run missing an experiment:\n%s", out)
	}
	if report.Schema != experiments.BenchSchemaVersion {
		t.Errorf("schema %d", report.Schema)
	}
	if report.Search == nil || report.Search.RecallAtK <= 0 || report.Search.FlatQPS <= 0 {
		t.Errorf("search report not filled: %+v", report.Search)
	}
	if report.Serve == nil || len(report.Serve.Points) == 0 || report.Serve.Points[0].QPS <= 0 {
		t.Errorf("serve report not filled: %+v", report.Serve)
	}
	var js bytes.Buffer
	if err := report.Write(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"recall_at_k"`, `"hnsw_qps"`, `"latency_p99_ms"`, `"schema": 5`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON report missing %s:\n%s", want, js.String())
		}
	}
	// A list with an unknown entry fails loudly instead of half-running.
	if _, err := run(&buf, "search,bogus", tinyOpts(), 1, nil, experiments.LoadOptions{}); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown entry in list: got %v", err)
	}
}
