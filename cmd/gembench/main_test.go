package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/experiments"
)

func tinyOpts() experiments.Options {
	return experiments.Options{
		Seed:           1,
		Scale:          0.04,
		Components:     8,
		Restarts:       2,
		SubsampleStack: 2000,
		HeaderDim:      48,
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, "bogus", tinyOpts(), 1)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("want unknown-experiment error, got %v", err)
	}
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table1", tinyOpts(), 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "GDS", "WDC", "Sato Tables", "Git Tables"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table2", tinyOpts(), 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "Gem (D+S)", "Squashing_GMM", "KS statistic"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig3(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig3", tinyOpts(), 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "D+C+S") {
		t.Errorf("output missing Figure 3 content:\n%s", out)
	}
}

func TestRunServe(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "serve", tinyOpts(), 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"serve eval", "qps", "mean batch"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSearch(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "search", tinyOpts(), 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ANN search", "recall@10", "hnsw build"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
